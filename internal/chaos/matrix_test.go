package chaos_test

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"tell/internal/chaos"
	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/histcheck"
	"tell/internal/recovery"
	"tell/internal/relational"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
)

// rig is a fault-tolerant Tell deployment: 3 storage nodes at RF 2 plus a
// spare, two commit managers, two PNs with the history recorder installed.
// The durable variant (newDurableRig) swaps the storage tier for WAL-backed
// nodes with a scatter-gather recoverer.
type rig struct {
	k       *sim.Kernel
	envr    env.Full
	net     *transport.SimNet
	cluster *store.Cluster
	cms     []*commitmgr.Server
	pns     []*core.PN
	hist    *histcheck.History
	driver  env.Node
	seed    int64
	rec     *recovery.SNRecoverer // nil unless durable
}

func newRig(t *testing.T, seed int64, class transport.NetworkClass, weakened bool) *rig {
	t.Helper()
	return buildRig(t, seed, class, weakened, store.ClusterConfig{
		NumNodes: 3, ReplicationFactor: 2, Spares: 1,
	})
}

// newDurableRig assembles the durability-tier deployment: WAL + checkpoints
// on a shared zero-latency blob backend, a scatter-gather recoverer wired to
// the storage manager, and no spares. At RF 1 the only copy of a partition
// is its master plus the log, so every crash cell exercises the durable
// path; at RF 2 replication and the durable tier recover side by side.
func newDurableRig(t *testing.T, seed int64, class transport.NetworkClass, rf int) *rig {
	t.Helper()
	return buildRig(t, seed, class, false, store.ClusterConfig{
		NumNodes: 3, PartitionsPerNode: 2, ReplicationFactor: rf,
		Durable: &store.DurOptions{
			Backend:         durable.NewMem(),
			SegmentBytes:    2 << 10,
			ChunkBytes:      2 << 10,
			CheckpointBytes: 16 << 10,
		},
	})
}

// wireNodeHooks connects process-level chaos events (CrashWithDisk,
// CrashLosingDisk, RestartRecover) to the storage nodes' crash/recover
// entry points. Harmless on rigs whose plans never emit those events.
func (r *rig) wireNodeHooks(inj *chaos.Injector) {
	inj.SetNodeHooks(chaos.NodeHooks{
		Crash: func(addr string, loseDisk bool) {
			if sn := r.cluster.Node(addr); sn != nil {
				sn.CrashVolatile(loseDisk)
			}
		},
		Restart: func(addr string) {
			if sn := r.cluster.Node(addr); sn != nil {
				sn.RecoverAsync()
			}
		},
	})
}

func buildRig(t *testing.T, seed int64, class transport.NetworkClass, weakened bool, cfg store.ClusterConfig) *rig {
	t.Helper()
	k := sim.NewKernel(seed)
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, class)
	cl, err := store.NewCluster(envr, net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{k: k, envr: envr, net: net, cluster: cl, hist: histcheck.New(), seed: seed}
	if cfg.Durable != nil {
		r.rec = recovery.NewSNRecoverer(envr, envr.NewNode("rec0", 2), net, cfg.Durable.Backend)
		cl.Manager.Recoverer = r.rec
	}
	cmAddrs := []string{"cm0", "cm1"}
	for _, id := range cmAddrs {
		node := envr.NewNode(id, 2)
		cm := commitmgr.New(id, id, envr, node, net, cl.NewClient(node))
		cm.Peers = cmAddrs
		// Detect a dead peer and recover its finish facts from the
		// transaction log well within a chaos cell's settle window.
		cm.StalePeerTicks = 40
		cm.RecoveryEvery = 25
		cm.RecoveryGrace = 50 * time.Millisecond
		if err := cm.Start(); err != nil {
			t.Fatal(err)
		}
		r.cms = append(r.cms, cm)
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("pn%d", i)
		node := envr.NewNode(name, 4)
		pn := core.New(core.Config{ID: name, SkipWriteValidation: weakened}, envr, node, net,
			cl.NewClient(node), commitmgr.NewClient(envr, node, net, cmAddrs))
		pn.SetRecorder(r.hist)
		pn.StartWorkers()
		r.pns = append(r.pns, pn)
	}
	r.driver = envr.NewNode("driver", 4)
	return r
}

// cellSeed derives a stable per-cell default seed so every grid cell runs a
// different (but reproducible) schedule; TELL_SEED overrides it.
func cellSeed(t *testing.T, parts ...string) int64 {
	t.Helper()
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
	}
	return testutil.Seed(t, int64(h.Sum64()%1_000_000))
}

// scenario is one row of the fault-plan grid. faultAt is when the first
// fault strikes (0 for always-on or fault-free plans): the availability
// assertion requires commits after that point.
type scenario struct {
	name    string
	faultAt time.Duration
	plan    func(r *rig) chaos.Plan
}

// bankScenarios builds the fault-plan grid. at is when point faults strike;
// it is tuned per network class so the fault lands mid-workload (InfiniBand
// finishes the whole run in tens of milliseconds, 10GbE is ~20× slower).
func bankScenarios(at time.Duration) []scenario {
	return []scenario{
		{"none", 0, func(r *rig) chaos.Plan { return chaos.NoFaults() }},
		{"storage-crash", at, func(r *rig) chaos.Plan { return chaos.StorageCrash("sn1", at) }},
		{"storage-crash-restart", at, func(r *rig) chaos.Plan {
			return chaos.StorageCrashRestart("sn1", at, 250*time.Millisecond)
		}},
		{"cm-failover", at, func(r *rig) chaos.Plan { return chaos.CMFailover("cm0", at) }},
		{"partition-heal", at, func(r *rig) chaos.Plan {
			// Isolate sn1 from everyone, including the cluster manager:
			// its pings time out, partitions fail over, then the network
			// heals and the stale node rejoins a world that moved on.
			rest := []string{"cm0", "cm1", "pn0", "pn1", "driver", r.cluster.ManagerAddr()}
			for _, a := range r.cluster.Addrs() {
				if a != "sn1" {
					rest = append(rest, a)
				}
			}
			return chaos.PartitionHeal([]string{"sn1"}, rest, at, 200*time.Millisecond)
		}},
		{"flaky-network", 0, func(r *rig) chaos.Plan {
			return chaos.FlakyNetwork(0.005, 0.005, 200*time.Microsecond)
		}},
		// Duplication aimed squarely at the mutating kinds: exactly-once must
		// hold when store writes and grouped CM starts are replayed by the
		// network on top of client-level retries.
		{"dup-mutations", 0, func(r *rig) chaos.Plan {
			return chaos.DupMutations(0, 0.02, 200*time.Microsecond)
		}},
		{"drop-dup-mutations", 0, func(r *rig) chaos.Plan {
			return chaos.DupMutations(0.01, 0.02, 200*time.Microsecond)
		}},
		{"replica-lag", 0, func(r *rig) chaos.Plan { return chaos.ReplicaLag(2 * time.Millisecond) }},
		{"replica-lag-failover", 50 * time.Millisecond, func(r *rig) chaos.Plan {
			return chaos.ReplicaLagWithFailover("sn1", 50*time.Millisecond, 2*time.Millisecond)
		}},
	}
}

func networkClasses() []transport.NetworkClass {
	return []transport.NetworkClass{transport.InfiniBand(), transport.Ethernet10G()}
}

// TestBankChaosMatrix runs concurrent bank transfers under every fault plan
// × network class. Every cell must stay anomaly-free, conserve the total
// balance (both in the recorded history and in the store), and keep
// committing after the fault strikes.
func TestBankChaosMatrix(t *testing.T) {
	for _, class := range networkClasses() {
		at := 30 * time.Millisecond
		if class.Name == transport.InfiniBand().Name {
			at = 8 * time.Millisecond
		}
		for _, sc := range bankScenarios(at) {
			class, sc := class, sc
			t.Run(class.Name+"/"+sc.name, func(t *testing.T) {
				runBankCell(t, class, sc)
			})
		}
	}
}

func runBankCell(t *testing.T, class transport.NetworkClass, sc scenario) {
	seed := cellSeed(t, "bank", class.Name, sc.name)
	runBankCellOn(t, newRig(t, seed, class, false), class, sc, seed)
}

func runBankCellOn(t *testing.T, r *rig, class transport.NetworkClass, sc scenario, seed int64) {
	inj := chaos.Install(r.k, r.net, sc.plan(r), seed)
	r.wireNodeHooks(inj)
	defer inj.Uninstall()

	const nAcc = 16
	const workers = 4
	const transfers = 40
	var table *core.TableInfo
	var rids []uint64
	finished := 0
	commitsAfterFault := 0

	r.driver.Go("bank", func(ctx env.Ctx) {
		// Setup with retries: always-on plans (flaky-network) are already
		// injecting faults while the table is created.
		var err error
		for attempt := 0; ; attempt++ {
			table, err = r.pns[0].Catalog().CreateTable(ctx, accountsSchema())
			if err == nil {
				break
			}
			if attempt > 20 {
				t.Errorf("create table: %v", err)
				r.k.Stop()
				return
			}
			ctx.Sleep(10 * time.Millisecond)
		}
		for attempt := 0; ; attempt++ {
			setup, err := r.pns[0].Begin(ctx)
			if err == nil {
				rids = rids[:0]
				for i := int64(0); i < nAcc && err == nil; i++ {
					var rid uint64
					rid, err = setup.Insert(ctx, table, account(i, "a", 100))
					rids = append(rids, rid)
				}
				if err == nil {
					err = setup.Commit(ctx)
				} else {
					setup.Abort(ctx)
				}
				if err == nil {
					break
				}
			}
			if attempt > 20 {
				t.Errorf("setup: %v", err)
				r.k.Stop()
				return
			}
			ctx.Sleep(10 * time.Millisecond)
		}

		for w := 0; w < workers; w++ {
			pn := r.pns[w%len(r.pns)]
			r.driver.Go("worker", func(ctx env.Ctx) {
				defer func() { finished++ }()
				tbl := openWithRetry(t, ctx, pn, "accounts")
				if tbl == nil {
					return
				}
				rng := ctx.Rand()
				for i := 0; i < transfers; i++ {
					from, to := rids[rng.Intn(nAcc)], rids[rng.Intn(nAcc)]
					if from == to {
						continue
					}
					for attempt := 0; attempt < 40; attempt++ {
						txn, err := pn.Begin(ctx)
						if err != nil {
							ctx.Sleep(5 * time.Millisecond)
							continue
						}
						fr, ok1, err1 := txn.Read(ctx, tbl, from)
						tr, ok2, err2 := txn.Read(ctx, tbl, to)
						if err1 != nil || err2 != nil || !ok1 || !ok2 {
							txn.Abort(ctx)
							ctx.Sleep(5 * time.Millisecond)
							continue
						}
						txn.Update(ctx, tbl, from, account(fr[0].I, "a", fr[2].I-1))
						txn.Update(ctx, tbl, to, account(tr[0].I, "a", tr[2].I+1))
						if err := txn.Commit(ctx); err == nil {
							if ctx.Now() > sc.faultAt {
								commitsAfterFault++
							}
							break
						}
						ctx.Sleep(time.Millisecond)
					}
				}
			})
		}

		r.driver.Go("verify", func(ctx env.Ctx) {
			for finished < workers {
				ctx.Sleep(5 * time.Millisecond)
			}
			ctx.Sleep(300 * time.Millisecond) // let recovery settle

			// Conservation in the store itself.
			var total int64
			var lastErr error
			scanned := false
			for attempt := 0; attempt < 20 && !scanned; attempt++ {
				txn, err := r.pns[0].Begin(ctx)
				if err != nil {
					lastErr = fmt.Errorf("begin: %w", err)
					ctx.Sleep(10 * time.Millisecond)
					continue
				}
				total = 0
				scanErr := txn.ScanTable(ctx, table, func(rid uint64, row relational.Row) bool {
					total += row[2].I
					return true
				})
				txn.Commit(ctx)
				scanned = scanErr == nil
				if !scanned {
					lastErr = fmt.Errorf("scan: %w", scanErr)
					ctx.Sleep(10 * time.Millisecond)
				}
			}
			if !scanned {
				t.Errorf("could not scan the table after the run: %v", lastErr)
			} else if total != nAcc*100 {
				t.Errorf("store total = %d, want %d: committed money lost or duplicated", total, nAcc*100)
			}
			r.k.Stop()
		})
	})
	if err := r.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if finished != workers {
		t.Fatalf("only %d/%d workers finished", finished, workers)
	}
	if commitsAfterFault == 0 {
		t.Errorf("no transfers committed after the fault at %v (availability lost)", sc.faultAt)
	}

	// The recorded history must be anomaly-free...
	rep := r.hist.Check()
	if !rep.Ok() {
		t.Errorf("history anomalies under %s/%s:\n%s", class.Name, sc.name, rep)
	}
	// ...and conserve the total on its own account.
	state := r.hist.CommittedState()
	var histTotal int64
	for _, rid := range rids {
		key := string(relational.RecordKey(table.Schema.ID, rid))
		row, ok := state[key]
		if !ok {
			t.Fatalf("account rid %d missing from committed state", rid)
		}
		histTotal += row[2].I
	}
	if histTotal != nAcc*100 {
		t.Errorf("history total = %d, want %d", histTotal, nAcc*100)
	}
	_, committed, _, _ := r.hist.Stats()
	if committed == 0 {
		t.Error("nothing committed")
	}
	drops, dups, delays := inj.Stats()
	t.Logf("%s/%s: seed=%d committed=%d afterFault=%d failovers=%d faults(drop=%d dup=%d delay=%d)\n%s",
		class.Name, sc.name, seed, committed, commitsAfterFault,
		r.cluster.Manager.Failovers(), drops, dups, delays, rep)
	r.k.Shutdown()
}

func openWithRetry(t *testing.T, ctx env.Ctx, pn *core.PN, name string) *core.TableInfo {
	for attempt := 0; attempt < 40; attempt++ {
		tbl, err := pn.Catalog().OpenTable(ctx, name)
		if err == nil {
			return tbl
		}
		ctx.Sleep(10 * time.Millisecond)
	}
	t.Errorf("open %s: retries exhausted", name)
	return nil
}

// accountsSchema mirrors the bank table used across the repo's tests.
func accountsSchema() *relational.TableSchema {
	return &relational.TableSchema{
		Name: "accounts",
		Cols: []relational.Column{
			{Name: "id", Type: relational.TInt64},
			{Name: "owner", Type: relational.TString},
			{Name: "balance", Type: relational.TInt64},
		},
		PKCols: []int{0},
	}
}

func account(id int64, owner string, balance int64) relational.Row {
	return relational.Row{relational.I64(id), relational.Str(owner), relational.I64(balance)}
}

// TestNegativeControlWeakenedEngineFlagsAnomalies is the checker's
// calibration shot: with write validation disabled (blind puts, no
// first-committer-wins) concurrent read-modify-write transfers must produce
// lost updates, and histcheck must catch them. If this test fails, the
// green matrix above proves nothing.
func TestNegativeControlWeakenedEngineFlagsAnomalies(t *testing.T) {
	seed := testutil.Seed(t, 4242)
	r := newRig(t, seed, transport.InfiniBand(), true)

	const nAcc = 2 // hot keys: collisions near-certain
	const workers = 4
	var rids []uint64
	finished := 0

	r.driver.Go("weakened", func(ctx env.Ctx) {
		table, err := r.pns[0].Catalog().CreateTable(ctx, accountsSchema())
		if err != nil {
			t.Error(err)
			r.k.Stop()
			return
		}
		setup, _ := r.pns[0].Begin(ctx)
		for i := int64(0); i < nAcc; i++ {
			rid, _ := setup.Insert(ctx, table, account(i, "a", 100))
			rids = append(rids, rid)
		}
		if err := setup.Commit(ctx); err != nil {
			t.Error(err)
			r.k.Stop()
			return
		}
		for w := 0; w < workers; w++ {
			pn := r.pns[w%len(r.pns)]
			r.driver.Go("worker", func(ctx env.Ctx) {
				tbl, _ := pn.Catalog().OpenTable(ctx, "accounts")
				for i := 0; i < 25; i++ {
					txn, err := pn.Begin(ctx)
					if err != nil {
						ctx.Sleep(time.Millisecond)
						continue
					}
					fr, _, _ := txn.Read(ctx, tbl, rids[0])
					to, _, _ := txn.Read(ctx, tbl, rids[1])
					// Widen the read-to-commit window so writers overlap.
					ctx.Sleep(200 * time.Microsecond)
					txn.Update(ctx, tbl, rids[0], account(fr[0].I, "a", fr[2].I-1))
					txn.Update(ctx, tbl, rids[1], account(to[0].I, "a", to[2].I+1))
					txn.Commit(ctx)
				}
				finished++
				if finished == workers {
					r.k.Stop()
				}
			})
		}
	})
	if err := r.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if finished != workers {
		t.Fatalf("only %d/%d workers finished", finished, workers)
	}
	rep := r.hist.Check()
	lost := rep.ByKind(histcheck.LostUpdate)
	if lost == 0 {
		t.Fatalf("weakened engine produced no lost updates; checker has no teeth (report: %s)", rep)
	}
	t.Logf("negative control: %d lost updates detected (of %d anomalies)", lost, len(rep.Anomalies))
	r.k.Shutdown()
}
