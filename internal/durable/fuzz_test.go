package durable

import (
	"bytes"
	"errors"
	"testing"

	"tell/internal/wire"
)

// FuzzWALDecode hammers the WAL record codec with arbitrary bytes:
// DecodeSegment must never panic, every decode must classify cleanly as
// ok / torn / corrupt, re-encoding what decoded must reproduce the consumed
// prefix (second-generation fixpoint), and truncating a valid log must
// always read as a torn write, never as corruption or silent success.
func FuzzWALDecode(f *testing.F) {
	seed := func(recs ...Record) []byte {
		var b []byte
		for i := range recs {
			b = AppendRecord(b, &recs[i])
		}
		return b
	}
	one := seed(Record{LSN: 1, Part: 0, Mut: wire.Mutation{Key: []byte("k"), Val: []byte("v"), Stamp: 7}})
	multi := seed(
		Record{LSN: 1, Part: 0, Mut: wire.Mutation{Key: []byte("alpha"), Val: []byte("beta"), Stamp: 1}},
		Record{LSN: 2, Part: 3, Mut: wire.Mutation{Key: []byte("ctr"), Counter: true, CtrVal: -99, Stamp: 2}},
		Record{LSN: 3, Part: 1, Mut: wire.Mutation{Key: []byte("gone"), Deleted: true, Stamp: 3}},
	)
	f.Add([]byte{})
	f.Add(one)
	f.Add(multi)
	f.Add(multi[:len(multi)-4]) // torn tail
	f.Add(append([]byte{recMagic, 0xff, 0xff, 0xff, 0x7f}, one...))
	corrupt := append([]byte(nil), one...)
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		n, err := DecodeSegment(data, func(r *Record) { recs = append(recs, *r) })
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		switch {
		case err == nil:
			if n != len(data) {
				t.Fatalf("clean decode consumed %d of %d bytes", n, len(data))
			}
		case IsTorn(err):
			var torn *TornError
			errors.As(err, &torn)
			if torn.Off != n {
				t.Fatalf("torn offset %d != consumed %d", torn.Off, n)
			}
			if torn.Have >= torn.Need {
				t.Fatalf("torn with have %d >= need %d", torn.Have, torn.Need)
			}
		case errors.Is(err, ErrCorrupt):
			// Fine: records before the bad frame were still delivered.
		default:
			t.Fatalf("unclassified decode error: %v", err)
		}

		// Re-encode whatever decoded; it must itself decode to the same
		// records and re-encode identically (round-trip fixpoint).
		var enc []byte
		for i := range recs {
			enc = AppendRecord(enc, &recs[i])
		}
		var recs2 []Record
		n2, err2 := DecodeSegment(enc, func(r *Record) { recs2 = append(recs2, *r) })
		if err2 != nil || n2 != len(enc) {
			t.Fatalf("re-encoded log does not decode: n=%d err=%v", n2, err2)
		}
		var enc2 []byte
		for i := range recs2 {
			enc2 = AppendRecord(enc2, &recs2[i])
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not a fixpoint:\n%x\n%x", enc, enc2)
		}

		// Any strict truncation of a canonical log is torn, never corrupt —
		// the property crash recovery relies on to trust a torn tail.
		if len(enc) > 0 {
			for _, cut := range []int{len(enc) - 1, len(enc) / 2, 1} {
				if cut >= len(enc) || cut < 0 {
					continue
				}
				m, terr := DecodeSegment(enc[:cut], func(*Record) {})
				if terr == nil {
					if m != cut {
						t.Fatalf("truncated at %d: decoded clean but consumed %d", cut, m)
					}
					continue // cut landed exactly on a frame boundary
				}
				if !IsTorn(terr) {
					t.Fatalf("truncated at %d: want torn, got %v", cut, terr)
				}
			}
		}
	})
}
