package durable

import (
	"fmt"
	"hash/crc32"
	"strings"

	"tell/internal/env"
	"tell/internal/wire"
)

// Manifest describes one durable checkpoint generation. It is written
// last, with an atomic Put, after every chunk of its generation: the
// moment the manifest lands is the atomic switch from the previous
// checkpoint to this one. A crash anywhere before that leaves the old
// manifest (and the old recovery path) fully intact.
type Manifest struct {
	// Seq is the checkpoint generation number.
	Seq uint64
	// Floor is the first WAL segment NOT fully covered by this image:
	// recovery loads the chunks and replays segments >= Floor. It is the
	// WAL position read before the memtable snapshot began (fuzzy
	// checkpoint: mutations racing the snapshot appear in both; stamps
	// dedupe them).
	Floor uint64
	// LSN is the next log sequence number at capture time (diagnostic).
	LSN uint64
	// Stamp is the highest cell stamp in the image; recovery seeds the
	// node's stamp counter past it.
	Stamp uint64
	// Fence is the commit-manager snapshot boundary (last assigned commit
	// timestamp) observed when the snapshot began, 0 if the node has no
	// fence source. Every transaction at or below it that touched this
	// node is in image+suffix.
	Fence uint64
	// Chunks and Cells size the image.
	Chunks uint64
	Cells  uint64
}

const ckptMagic = 0xC4

func manifestName(ns string) string { return ns + "/ckpt/manifest" }

func chunkName(ns string, seq uint64, i int) string {
	return fmt.Sprintf("%s/ckpt/g%010d/chunk-%06d", ns, seq, i)
}

// genPrefix is the object prefix of generation seq's chunks.
func genPrefix(ns string, seq uint64) string {
	return fmt.Sprintf("%s/ckpt/g%010d/", ns, seq)
}

// encodeManifest frames the manifest with magic + CRC like a WAL record, so
// bit-rot is detected rather than silently replayed.
func encodeManifest(m *Manifest) []byte {
	w := wire.NewWriter(64)
	w.Uvarint(m.Seq)
	w.Uvarint(m.Floor)
	w.Uvarint(m.LSN)
	w.Uvarint(m.Stamp)
	w.Uvarint(m.Fence)
	w.Uvarint(m.Chunks)
	w.Uvarint(m.Cells)
	p := w.Bytes()
	out := make([]byte, 0, len(p)+5)
	out = append(out, ckptMagic)
	var crc [4]byte
	putU32(crc[:], crc32.ChecksumIEEE(p))
	out = append(out, crc[:]...)
	return append(out, p...)
}

func decodeManifest(b []byte) (*Manifest, error) {
	if len(b) < 5 || b[0] != ckptMagic {
		return nil, fmt.Errorf("%w: bad manifest header", ErrCorrupt)
	}
	p := b[5:]
	if crc32.ChecksumIEEE(p) != getU32(b[1:5]) {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	r := wire.NewReader(p)
	m := &Manifest{
		Seq:    r.Uvarint(),
		Floor:  r.Uvarint(),
		LSN:    r.Uvarint(),
		Stamp:  r.Uvarint(),
		Fence:  r.Uvarint(),
		Chunks: r.Uvarint(),
		Cells:  r.Uvarint(),
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return m, nil
}

// encodeChunk frames a batch of cells: [magic][crc32][count][cells...].
func encodeChunk(cells []wire.Mutation) []byte {
	w := wire.NewWriter(64 * len(cells))
	w.Uvarint(uint64(len(cells)))
	for i := range cells {
		appendMutation(w, &cells[i])
	}
	p := w.Bytes()
	out := make([]byte, 0, len(p)+5)
	out = append(out, ckptMagic)
	var crc [4]byte
	putU32(crc[:], crc32.ChecksumIEEE(p))
	out = append(out, crc[:]...)
	return append(out, p...)
}

// DecodeChunk feeds every cell in a checkpoint chunk to fn. Chunks are
// written atomically, so unlike segments there is no torn case — any
// framing failure is corruption.
func DecodeChunk(b []byte, fn func(*wire.Mutation)) error {
	if len(b) < 5 || b[0] != ckptMagic {
		return fmt.Errorf("%w: bad chunk header", ErrCorrupt)
	}
	p := b[5:]
	if crc32.ChecksumIEEE(p) != getU32(b[1:5]) {
		return fmt.Errorf("%w: chunk checksum mismatch", ErrCorrupt)
	}
	r := wire.NewReader(p)
	n := r.Count(6)
	for i := 0; i < n; i++ {
		var m wire.Mutation
		readMutation(r, &m)
		fn(&m)
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// IsChunk reports whether the object name is a checkpoint chunk of ns.
func IsChunk(ns, name string) bool {
	return strings.HasPrefix(name, ns+"/ckpt/") && strings.Contains(name, "/chunk-")
}

// WriteCheckpoint writes cells as man.Seq's chunk objects, then atomically
// installs the manifest, then garbage-collects chunks of older generations.
// man.Chunks and man.Cells are filled in. chunkBytes bounds chunk size
// (default 64 KiB); the last write is the manifest, so a crash at any
// boundary leaves a consistent previous generation.
func WriteCheckpoint(ctx env.Ctx, be Backend, ns string, man *Manifest, cells []wire.Mutation, chunkBytes int) error {
	if chunkBytes <= 0 {
		chunkBytes = 64 << 10
	}
	man.Cells = uint64(len(cells))
	man.Chunks = 0
	start := 0
	bytes := 0
	flush := func(end int) error {
		if end == start {
			return nil
		}
		name := chunkName(ns, man.Seq, int(man.Chunks))
		if err := be.Put(ctx, name, encodeChunk(cells[start:end])); err != nil {
			return err
		}
		man.Chunks++
		start = end
		bytes = 0
		return nil
	}
	for i := range cells {
		bytes += 16 + len(cells[i].Key) + len(cells[i].Val)
		if bytes >= chunkBytes {
			if err := flush(i + 1); err != nil {
				return err
			}
		}
	}
	if err := flush(len(cells)); err != nil {
		return err
	}
	if err := be.Put(ctx, manifestName(ns), encodeManifest(man)); err != nil {
		return err
	}
	// GC older generations. Crash-safe: the new manifest is already
	// durable, so these objects are unreachable whatever survives.
	names, err := be.List(ctx, ns+"/ckpt/")
	if err != nil {
		return err
	}
	keep := genPrefix(ns, man.Seq)
	for _, name := range names {
		if name == manifestName(ns) || strings.HasPrefix(name, keep) {
			continue
		}
		if err := be.Delete(ctx, name); err != nil {
			return err
		}
	}
	return nil
}

// LoadCheckpoint reads ns's current checkpoint, feeding every cell to
// apply. It returns nil (and calls nothing) when no checkpoint exists.
func LoadCheckpoint(ctx env.Ctx, be Backend, ns string, apply func(*wire.Mutation)) (*Manifest, error) {
	raw, err := be.Get(ctx, manifestName(ns))
	if err == ErrNotExist {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	man, err := decodeManifest(raw)
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(man.Chunks); i++ {
		data, err := be.Get(ctx, chunkName(ns, man.Seq, i))
		if err != nil {
			return nil, fmt.Errorf("durable: checkpoint chunk %d: %w", i, err)
		}
		if err := DecodeChunk(data, apply); err != nil {
			return nil, fmt.Errorf("durable: checkpoint chunk %d: %w", i, err)
		}
	}
	return man, nil
}

// RecoveryObjects lists the objects a scatter-gather recovery must replay
// to reconstruct ns's state: the current checkpoint generation's chunks
// followed by WAL segments at or above the manifest floor (all segments
// when no checkpoint exists). The order is deterministic; applying the
// records in any order converges because cells carry stamps.
func RecoveryObjects(ctx env.Ctx, be Backend, ns string) ([]string, error) {
	var floor uint64
	var out []string
	raw, err := be.Get(ctx, manifestName(ns))
	switch err {
	case nil:
		man, err := decodeManifest(raw)
		if err != nil {
			return nil, err
		}
		floor = man.Floor
		for i := 0; i < int(man.Chunks); i++ {
			out = append(out, chunkName(ns, man.Seq, i))
		}
	case ErrNotExist:
	default:
		return nil, err
	}
	names, err := be.List(ctx, ns+"/wal/")
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if idx, ok := segIndex(name); ok && idx >= floor {
			out = append(out, name)
		}
	}
	return out, nil
}
