package durable

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tell/internal/det"
	"tell/internal/env"
	"tell/internal/sanitize"
)

// File is a Backend over a local directory: each object is a file, Append
// writes through the OS page cache and Sync is fsync, Put is
// write-temp-then-rename. It serves real deployments (telld -wal-dir);
// simulated experiments prefer Blob so I/O time is modelled in virtual
// time.
type File struct {
	dir string

	mu   sanitize.Mutex
	open map[string]*os.File // append handles, kept open between Sync calls
}

// NewFile returns a backend rooted at dir, creating it if needed.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f := &File{dir: dir, open: make(map[string]*os.File)}
	f.mu.SetName("durable.File.mu")
	return f, nil
}

func (f *File) path(name string) string {
	return filepath.Join(f.dir, filepath.FromSlash(name))
}

// handle returns the open append handle for name, creating file and parent
// directories on first use. Caller holds f.mu.
func (f *File) handle(name string) (*os.File, error) {
	if h, ok := f.open[name]; ok {
		return h, nil
	}
	p := f.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	h, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	f.open[name] = h
	return h, nil
}

// Put atomically replaces the object via a temp file and rename. The file
// I/O (including the fsync) runs outside f.mu: a checkpoint Put must not
// stall concurrent WAL appends to other objects, and the backend contract
// forbids concurrent writers to the same object, so only the handle map
// needs the lock.
func (f *File) Put(ctx env.Ctx, name string, data []byte) error {
	f.mu.Lock()
	if h, ok := f.open[name]; ok {
		delete(f.open, name)
		if err := h.Close(); err != nil {
			f.mu.Unlock()
			return err
		}
	}
	f.mu.Unlock()
	p := f.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp := p + ".tmp"
	h, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := h.Write(data); err != nil {
		return errors.Join(err, h.Close())
	}
	if err := h.Sync(); err != nil {
		return errors.Join(err, h.Close())
	}
	if err := h.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// Append writes data at the end of the object.
func (f *File) Append(ctx env.Ctx, name string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	h, err := f.handle(name)
	if err != nil {
		return err
	}
	_, err = h.Write(data)
	return err
}

// Sync fsyncs the object's append handle.
func (f *File) Sync(ctx env.Ctx, name string) error {
	f.mu.Lock()
	h, ok := f.open[name]
	f.mu.Unlock()
	if !ok {
		return nil
	}
	return h.Sync()
}

// Get reads the object in full.
func (f *File) Get(ctx env.Ctx, name string) ([]byte, error) {
	data, err := os.ReadFile(f.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotExist
	}
	return data, err
}

// List walks the directory tree and returns slash-separated object names
// with the prefix, sorted.
func (f *File) List(ctx env.Ctx, prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(f.dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, rerr := filepath.Rel(f.dir, p)
		if rerr != nil {
			return rerr
		}
		name := filepath.ToSlash(rel)
		if strings.HasSuffix(name, ".tmp") {
			return nil
		}
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes the object; missing objects are not an error. A close
// failure on the append handle is reported even though the file is going
// away: it can signal a dying disk that WAL truncation must not ignore.
func (f *File) Delete(ctx env.Ctx, name string) error {
	f.mu.Lock()
	var closeErr error
	if h, ok := f.open[name]; ok {
		closeErr = h.Close()
		delete(f.open, name)
	}
	f.mu.Unlock()
	err := os.Remove(f.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		err = nil
	}
	return errors.Join(closeErr, err)
}

// Wipe removes every object under prefix (crash-losing-disk model).
func (f *File) Wipe(prefix string) {
	f.mu.Lock()
	for _, name := range det.Keys(f.open) {
		if strings.HasPrefix(name, prefix) {
			// Wipe models losing the disk; the handles' fate is the point.
			//lint:allow errdiscard wipe simulates disk loss, close errors are part of the modeled failure
			f.open[name].Close()
			delete(f.open, name)
		}
	}
	f.mu.Unlock()
	os.RemoveAll(f.path(strings.TrimSuffix(prefix, "/")))
}

// Close releases all open append handles (for tests and shutdown).
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var first error
	for _, name := range det.Keys(f.open) {
		if err := f.open[name].Close(); err != nil && first == nil {
			first = err
		}
		delete(f.open, name)
	}
	return first
}
