package durable

import (
	"strings"
	"time"

	"tell/internal/det"
	"tell/internal/env"
	"tell/internal/sanitize"
)

// BlobProfile models the latency of a remote object store. All delay is
// charged through ctx.Sleep, so a simulated cluster pays the cost in
// virtual time and runs stay deterministic under TELL_SEED.
type BlobProfile struct {
	Name string
	// OpLatency is the fixed round-trip charged per call (request setup,
	// service-side dispatch).
	OpLatency time.Duration
	// MBPerSec is the transfer bandwidth applied to payload bytes
	// (0 = infinite).
	MBPerSec int
}

// S3Profile approximates a same-region object store: ~1ms per call plus
// ~400 MB/s of transfer bandwidth.
func S3Profile() BlobProfile {
	return BlobProfile{Name: "s3", OpLatency: time.Millisecond, MBPerSec: 400}
}

// MemProfile is a zero-latency profile: an in-memory backend for tests that
// exercise durability logic without paying modelled I/O time.
func MemProfile() BlobProfile { return BlobProfile{Name: "mem"} }

// Blob is an in-memory Backend modelling a remote blob store. Appended data
// stays staged until Sync, mirroring a multipart upload that is invisible
// until completed; a crash (Wipe aside) loses staged bytes, never durable
// ones.
type Blob struct {
	prof BlobProfile

	mu      sanitize.Mutex
	objects map[string][]byte
	staged  map[string][]byte
}

// NewBlob returns an empty blob store with the given latency profile.
func NewBlob(prof BlobProfile) *Blob {
	b := &Blob{
		prof:    prof,
		objects: make(map[string][]byte),
		staged:  make(map[string][]byte),
	}
	b.mu.SetName("durable.Blob.mu")
	return b
}

// NewMem returns a zero-latency in-memory backend.
func NewMem() *Blob { return NewBlob(MemProfile()) }

// wait charges the modelled latency for an operation moving n payload bytes.
// It must be called without b.mu held: ctx.Sleep blocks.
func (b *Blob) wait(ctx env.Ctx, n int) {
	d := b.prof.OpLatency
	if b.prof.MBPerSec > 0 {
		d += time.Duration(n) * time.Second / time.Duration(b.prof.MBPerSec<<20)
	}
	if d > 0 {
		ctx.Sleep(d)
	}
}

// Put atomically replaces the object.
func (b *Blob) Put(ctx env.Ctx, name string, data []byte) error {
	b.wait(ctx, len(data))
	b.mu.Lock()
	b.objects[name] = append([]byte(nil), data...)
	delete(b.staged, name)
	b.mu.Unlock()
	return nil
}

// Append stages data at the end of the object.
func (b *Blob) Append(ctx env.Ctx, name string, data []byte) error {
	b.wait(ctx, len(data))
	b.mu.Lock()
	b.staged[name] = append(b.staged[name], data...)
	b.mu.Unlock()
	return nil
}

// Sync promotes the object's staged bytes to durable.
func (b *Blob) Sync(ctx env.Ctx, name string) error {
	b.wait(ctx, 0)
	b.mu.Lock()
	if st := b.staged[name]; len(st) > 0 {
		b.objects[name] = append(b.objects[name], st...)
		delete(b.staged, name)
	}
	b.mu.Unlock()
	return nil
}

// Get returns a copy of the object's durable contents.
func (b *Blob) Get(ctx env.Ctx, name string) ([]byte, error) {
	b.mu.Lock()
	data, ok := b.objects[name]
	if ok {
		data = append([]byte(nil), data...)
	}
	b.mu.Unlock()
	if !ok {
		b.wait(ctx, 0)
		return nil, ErrNotExist
	}
	b.wait(ctx, len(data))
	return data, nil
}

// List returns durable object names with the prefix, sorted.
func (b *Blob) List(ctx env.Ctx, prefix string) ([]string, error) {
	b.wait(ctx, 0)
	b.mu.Lock()
	var out []string
	for _, name := range det.Keys(b.objects) {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	b.mu.Unlock()
	return out, nil
}

// Delete removes the object.
func (b *Blob) Delete(ctx env.Ctx, name string) error {
	b.wait(ctx, 0)
	b.mu.Lock()
	delete(b.objects, name)
	delete(b.staged, name)
	b.mu.Unlock()
	return nil
}

// Wipe destroys every object (durable and staged) under prefix, modelling a
// crash that loses the disk. Instantaneous by design.
func (b *Blob) Wipe(prefix string) {
	b.mu.Lock()
	for _, name := range det.Keys(b.objects) {
		if strings.HasPrefix(name, prefix) {
			delete(b.objects, name)
		}
	}
	for _, name := range det.Keys(b.staged) {
		if strings.HasPrefix(name, prefix) {
			delete(b.staged, name)
		}
	}
	b.mu.Unlock()
}
