package durable

import (
	"fmt"
	"strconv"
	"strings"

	"tell/internal/env"
	"tell/internal/sanitize"
)

// WALConfig tunes the write-ahead log.
type WALConfig struct {
	// SegmentBytes is the roll threshold: a group commit that finds the
	// current segment at or past it starts a new segment. Default 64 KiB.
	SegmentBytes int
}

func (c *WALConfig) fill() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 10
	}
}

// WAL is a segmented write-ahead log under one namespace of a Backend. One
// writer at a time calls Commit (the storage node's group-commit flusher
// serializes callers); Position and stats accessors are safe concurrently
// with the writer.
type WAL struct {
	be  Backend
	ns  string
	cfg WALConfig

	mu        sanitize.Mutex
	seg       uint64 // current segment index
	segBytes  int    // bytes appended to the current segment
	nextLSN   uint64
	sinceCkpt uint64 // bytes appended since MarkCheckpoint
	commits   uint64
	records   uint64
}

// OpenWAL returns a log positioned to append to a fresh segment. A brand
// new node passes seg 0 and lsn 1; a recovering node passes
// ReplayStats.NextSeg and MaxLSN+1 so the new tail never touches a segment
// that may end in a torn write.
func OpenWAL(be Backend, ns string, cfg WALConfig, seg, nextLSN uint64) *WAL {
	cfg.fill()
	if nextLSN == 0 {
		nextLSN = 1
	}
	w := &WAL{be: be, ns: ns, cfg: cfg, seg: seg, nextLSN: nextLSN}
	w.mu.SetName("durable.WAL.mu")
	return w
}

// segName formats a segment object name; zero-padding keeps List order
// equal to segment order.
func segName(ns string, seg uint64) string {
	return fmt.Sprintf("%s/wal/seg-%010d", ns, seg)
}

// segIndex parses the segment index back out of an object name.
func segIndex(name string) (uint64, bool) {
	i := strings.LastIndex(name, "/seg-")
	if i < 0 {
		return 0, false
	}
	n, err := strconv.ParseUint(name[i+len("/seg-"):], 10, 64)
	return n, err == nil
}

// IsSegment reports whether the object name is a WAL segment of namespace
// ns (used by recovery workers to pick a decoder).
func IsSegment(ns, name string) bool {
	return strings.HasPrefix(name, ns+"/wal/")
}

// Commit assigns LSNs to recs, appends them to the log as one frame batch,
// and syncs — one Commit is one group commit, one durability boundary. On
// return the records are durable; on error the caller must treat the log as
// dead (fail-stop), because the append may be partially staged.
func (w *WAL) Commit(ctx env.Ctx, recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	var buf []byte
	for i := range recs {
		recs[i].LSN = w.nextLSN
		w.nextLSN++
		buf = AppendRecord(buf, &recs[i])
	}
	if w.segBytes >= w.cfg.SegmentBytes {
		w.seg++
		w.segBytes = 0
	}
	name := segName(w.ns, w.seg)
	w.segBytes += len(buf)
	w.sinceCkpt += uint64(len(buf))
	w.commits++
	w.records += uint64(len(recs))
	w.mu.Unlock()

	if err := w.be.Append(ctx, name, buf); err != nil {
		return err
	}
	return w.be.Sync(ctx, name)
}

// Position returns the current segment index and the next LSN. A fuzzy
// checkpoint reads Position *before* snapshotting the memtable: every
// record the snapshot misses lands in a segment at or above the returned
// index, so replaying from it cannot lose anything (apply-if-newer makes
// the overlap harmless).
func (w *WAL) Position() (seg, nextLSN uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg, w.nextLSN
}

// SinceCheckpoint returns bytes committed since the last MarkCheckpoint.
func (w *WAL) SinceCheckpoint() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sinceCkpt
}

// MarkCheckpoint resets the checkpoint-trigger counter.
func (w *WAL) MarkCheckpoint() {
	w.mu.Lock()
	w.sinceCkpt = 0
	w.mu.Unlock()
}

// Stats returns commit-batch and record counts.
func (w *WAL) Stats() (commits, records uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.commits, w.records
}

// TruncateBefore deletes segments below floor — they are fully covered by a
// durable checkpoint. Deleting is crash-safe in any order: replay starts at
// the manifest's floor, so a leftover segment below it is simply ignored.
func (w *WAL) TruncateBefore(ctx env.Ctx, floor uint64) error {
	names, err := w.be.List(ctx, w.ns+"/wal/")
	if err != nil {
		return err
	}
	for _, name := range names {
		if idx, ok := segIndex(name); ok && idx < floor {
			if err := w.be.Delete(ctx, name); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReplayStats summarizes a WAL replay.
type ReplayStats struct {
	Segments int
	Records  int
	Bytes    int
	MaxLSN   uint64
	MaxStamp uint64
	// NextSeg is the segment index a reopened WAL should append to: one
	// past the highest segment seen (or the floor if the log was empty).
	NextSeg uint64
	// Torn reports that the final segment ended in a partial frame — the
	// expected signature of a crash mid-group-commit. The partial frame's
	// records were never acknowledged, so they are discarded.
	Torn bool
}

// ReplayWAL reads ns's segments at or above floor in order and feeds every
// record to apply. A torn tail on the final segment is tolerated (and
// reported in stats); corruption anywhere, or a torn frame in a non-final
// segment, aborts the replay with the typed error — the records delivered
// before it stand.
func ReplayWAL(ctx env.Ctx, be Backend, ns string, floor uint64, apply func(*Record)) (ReplayStats, error) {
	st := ReplayStats{NextSeg: floor}
	names, err := be.List(ctx, ns+"/wal/")
	if err != nil {
		return st, err
	}
	var segs []string
	for _, name := range names {
		if idx, ok := segIndex(name); ok && idx >= floor {
			segs = append(segs, name)
		}
	}
	for i, name := range segs {
		data, err := be.Get(ctx, name)
		if err != nil {
			return st, fmt.Errorf("durable: read %s: %w", name, err)
		}
		n, err := DecodeSegment(data, func(rec *Record) {
			st.Records++
			if rec.LSN > st.MaxLSN {
				st.MaxLSN = rec.LSN
			}
			if rec.Mut.Stamp > st.MaxStamp {
				st.MaxStamp = rec.Mut.Stamp
			}
			apply(rec)
		})
		st.Bytes += n
		st.Segments++
		if idx, ok := segIndex(name); ok {
			st.NextSeg = idx + 1
		}
		if err != nil {
			if IsTorn(err) && i == len(segs)-1 {
				st.Torn = true
				return st, nil
			}
			return st, fmt.Errorf("durable: replay %s: %w", name, err)
		}
	}
	return st, nil
}
