package durable

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/testutil"
	"tell/internal/wire"
)

// runSim executes fn inside a one-node simulation so backend calls have a
// virtual-time ctx to charge against.
func runSim(t *testing.T, seed int64, fn func(ctx env.Ctx)) {
	t.Helper()
	k := sim.NewKernel(seed)
	envr := env.NewSim(k)
	n := envr.NewNode("test", 2)
	n.Go("main", func(ctx env.Ctx) {
		defer k.Stop()
		fn(ctx)
	})
	if err := k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
}

func mut(key, val string, stamp uint64) wire.Mutation {
	return wire.Mutation{Key: []byte(key), Val: []byte(val), Stamp: stamp}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{LSN: 1, Part: 0, Mut: mut("a", "1", 10)},
		{LSN: 2, Part: 3, Mut: wire.Mutation{Key: []byte("c"), Counter: true, CtrVal: -7, Stamp: 11}},
		{LSN: 3, Part: 3, Mut: wire.Mutation{Key: []byte("d"), Deleted: true, Stamp: 12}},
		{LSN: 4, Part: 1, Mut: mut("e", "", 13)},
	}
	var buf []byte
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	var got []Record
	n, err := DecodeSegment(buf, func(r *Record) { got = append(got, *r) })
	if err != nil || n != len(buf) {
		t.Fatalf("DecodeSegment: n=%d err=%v", n, err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].LSN != recs[i].LSN || got[i].Part != recs[i].Part ||
			!bytes.Equal(got[i].Mut.Key, recs[i].Mut.Key) ||
			!bytes.Equal(got[i].Mut.Val, recs[i].Mut.Val) ||
			got[i].Mut.Stamp != recs[i].Mut.Stamp ||
			got[i].Mut.Deleted != recs[i].Mut.Deleted ||
			got[i].Mut.Counter != recs[i].Mut.Counter ||
			got[i].Mut.CtrVal != recs[i].Mut.CtrVal {
			t.Fatalf("record %d mismatch: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestRecordTornAndCorrupt(t *testing.T) {
	rec := Record{LSN: 9, Part: 2, Mut: mut("key", "value", 44)}
	frame := AppendRecord(nil, &rec)

	// Every strict prefix is a torn write, never corruption.
	for cut := 0; cut < len(frame); cut++ {
		_, _, err := DecodeRecord(frame[:cut])
		if cut == 0 {
			if !IsTorn(err) {
				t.Fatalf("cut 0: want torn, got %v", err)
			}
			continue
		}
		if !IsTorn(err) {
			t.Fatalf("cut %d: want torn, got %v", cut, err)
		}
	}

	// Bad magic.
	bad := append([]byte(nil), frame...)
	bad[0] ^= 0xff
	if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: want ErrCorrupt, got %v", err)
	}
	// Flipped payload byte fails the checksum.
	bad = append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload flip: want ErrCorrupt, got %v", err)
	}
}

func TestWALCommitReplayRoll(t *testing.T) {
	seed := testutil.Seed(t, 101)
	runSim(t, seed, func(ctx env.Ctx) {
		be := NewMem()
		w := OpenWAL(be, "sn0", WALConfig{SegmentBytes: 64}, 0, 1)
		var want []Record
		for b := 0; b < 10; b++ {
			batch := []Record{
				{Part: 1, Mut: mut(fmt.Sprintf("k%02d", b), "v", uint64(b)*2+1)},
				{Part: 2, Mut: mut(fmt.Sprintf("j%02d", b), "w", uint64(b)*2+2)},
			}
			if err := w.Commit(ctx, batch); err != nil {
				t.Errorf("commit %d: %v", b, err)
				return
			}
			want = append(want, batch...)
		}
		names, _ := be.List(ctx, "sn0/wal/")
		if len(names) < 3 {
			t.Errorf("expected multiple segments after rolling, got %v", names)
		}

		var got []Record
		st, err := ReplayWAL(ctx, be, "sn0", 0, func(r *Record) { got = append(got, *r) })
		if err != nil {
			t.Errorf("replay: %v", err)
			return
		}
		if st.Torn {
			t.Error("unexpected torn tail")
		}
		if len(got) != len(want) {
			t.Errorf("replayed %d records, want %d", len(got), len(want))
			return
		}
		for i := range got {
			if got[i].LSN != uint64(i+1) {
				t.Errorf("record %d: lsn %d, want %d", i, got[i].LSN, i+1)
			}
			if !bytes.Equal(got[i].Mut.Key, want[i].Mut.Key) {
				t.Errorf("record %d: key %q, want %q", i, got[i].Mut.Key, want[i].Mut.Key)
			}
		}
		if st.MaxLSN != uint64(len(want)) || st.MaxStamp != 20 {
			t.Errorf("stats: %+v", st)
		}

		// A reopened WAL appends past the old tail; replay sees both eras.
		w2 := OpenWAL(be, "sn0", WALConfig{SegmentBytes: 64}, st.NextSeg, st.MaxLSN+1)
		if err := w2.Commit(ctx, []Record{{Part: 1, Mut: mut("zz", "post", 99)}}); err != nil {
			t.Errorf("commit after reopen: %v", err)
		}
		n := 0
		st2, err := ReplayWAL(ctx, be, "sn0", 0, func(r *Record) { n++ })
		if err != nil || n != len(want)+1 || st2.MaxLSN != st.MaxLSN+1 {
			t.Errorf("replay after reopen: n=%d err=%v stats=%+v", n, err, st2)
		}
	})
}

func TestWALTornTailOnlyFinalSegment(t *testing.T) {
	seed := testutil.Seed(t, 102)
	runSim(t, seed, func(ctx env.Ctx) {
		be := NewMem()
		full := AppendRecord(nil, &Record{LSN: 1, Part: 0, Mut: mut("a", "1", 1)})
		full = AppendRecord(full, &Record{LSN: 2, Part: 0, Mut: mut("b", "2", 2)})
		torn := full[:len(full)-3]

		// Torn tail on the final segment: tolerated, reported.
		be.Put(ctx, segName("sn0", 0), full)
		be.Put(ctx, segName("sn0", 1), torn)
		n := 0
		st, err := ReplayWAL(ctx, be, "sn0", 0, func(*Record) { n++ })
		if err != nil {
			t.Errorf("final-segment torn tail should be tolerated: %v", err)
		}
		if !st.Torn || n != 3 {
			t.Errorf("want torn=true n=3, got torn=%v n=%d", st.Torn, n)
		}

		// The same cut mid-log is an error: a non-final segment cannot
		// legitimately end in a partial frame.
		be2 := NewMem()
		be2.Put(ctx, segName("sn0", 0), torn)
		be2.Put(ctx, segName("sn0", 1), full)
		if _, err := ReplayWAL(ctx, be2, "sn0", 0, func(*Record) {}); err == nil {
			t.Error("torn frame in non-final segment must fail replay")
		}

		// Corruption is an error even on the final segment.
		be3 := NewMem()
		crpt := append([]byte(nil), full...)
		crpt[len(crpt)-1] ^= 0x40
		be3.Put(ctx, segName("sn0", 0), crpt)
		if _, err := ReplayWAL(ctx, be3, "sn0", 0, func(*Record) {}); !errors.Is(err, ErrCorrupt) {
			t.Errorf("want ErrCorrupt, got %v", err)
		}
	})
}

func TestWALTruncateBefore(t *testing.T) {
	seed := testutil.Seed(t, 103)
	runSim(t, seed, func(ctx env.Ctx) {
		be := NewMem()
		w := OpenWAL(be, "sn0", WALConfig{SegmentBytes: 32}, 0, 1)
		for i := 0; i < 8; i++ {
			if err := w.Commit(ctx, []Record{{Part: 0, Mut: mut(fmt.Sprintf("k%d", i), "vvvvvvvv", uint64(i+1))}}); err != nil {
				t.Errorf("commit: %v", err)
			}
		}
		floor, _ := w.Position()
		if floor < 2 {
			t.Fatalf("expected several rolled segments, floor=%d", floor)
		}
		if err := w.TruncateBefore(ctx, floor); err != nil {
			t.Errorf("truncate: %v", err)
		}
		names, _ := be.List(ctx, "sn0/wal/")
		for _, name := range names {
			if idx, ok := segIndex(name); !ok || idx < floor {
				t.Errorf("segment below floor survived truncation: %s", name)
			}
		}
		n := 0
		if _, err := ReplayWAL(ctx, be, "sn0", floor, func(*Record) { n++ }); err != nil {
			t.Errorf("replay after truncate: %v", err)
		}
		if n == 0 {
			t.Error("expected surviving records at or above the floor")
		}
	})
}

func TestCheckpointWriteLoadGC(t *testing.T) {
	seed := testutil.Seed(t, 104)
	runSim(t, seed, func(ctx env.Ctx) {
		be := NewMem()
		cells := []wire.Mutation{
			mut("a", "1", 5),
			{Key: []byte("c"), Counter: true, CtrVal: 42, Stamp: 6},
			{Key: []byte("d"), Deleted: true, Stamp: 7},
			mut("e", "payload-payload-payload", 8),
		}
		man := &Manifest{Seq: 1, Floor: 3, LSN: 17, Stamp: 8, Fence: 1234}
		if err := WriteCheckpoint(ctx, be, "sn0", man, cells, 24); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if man.Chunks < 2 {
			t.Errorf("expected multiple chunks, got %d", man.Chunks)
		}

		var got []wire.Mutation
		loaded, err := LoadCheckpoint(ctx, be, "sn0", func(m *wire.Mutation) { got = append(got, *m) })
		if err != nil {
			t.Errorf("load: %v", err)
			return
		}
		if loaded.Seq != 1 || loaded.Floor != 3 || loaded.Fence != 1234 || loaded.Cells != 4 {
			t.Errorf("manifest mismatch: %+v", loaded)
		}
		if len(got) != len(cells) {
			t.Fatalf("loaded %d cells, want %d", len(got), len(cells))
		}
		for i := range cells {
			if !bytes.Equal(got[i].Key, cells[i].Key) || got[i].Stamp != cells[i].Stamp ||
				got[i].Deleted != cells[i].Deleted || got[i].CtrVal != cells[i].CtrVal {
				t.Errorf("cell %d mismatch: %+v != %+v", i, got[i], cells[i])
			}
		}

		// A second generation replaces the first and GCs its chunks.
		man2 := &Manifest{Seq: 2, Floor: 9, LSN: 30, Stamp: 20}
		if err := WriteCheckpoint(ctx, be, "sn0", man2, cells[:1], 0); err != nil {
			t.Errorf("write gen2: %v", err)
			return
		}
		names, _ := be.List(ctx, "sn0/ckpt/")
		for _, name := range names {
			if name != manifestName("sn0") && !IsChunk("sn0", name) {
				t.Errorf("unexpected object %s", name)
			}
			if idx := genPrefix("sn0", 1); len(name) >= len(idx) && name[:len(idx)] == idx {
				t.Errorf("gen-1 chunk survived GC: %s", name)
			}
		}
		loaded2, err := LoadCheckpoint(ctx, be, "sn0", func(*wire.Mutation) {})
		if err != nil || loaded2.Seq != 2 {
			t.Errorf("load gen2: %+v err=%v", loaded2, err)
		}

		// Missing checkpoint: nil, nil.
		if m, err := LoadCheckpoint(ctx, be, "other", func(*wire.Mutation) {}); m != nil || err != nil {
			t.Errorf("absent checkpoint: m=%+v err=%v", m, err)
		}
	})
}

func TestRecoveryObjects(t *testing.T) {
	seed := testutil.Seed(t, 105)
	runSim(t, seed, func(ctx env.Ctx) {
		be := NewMem()
		w := OpenWAL(be, "sn0", WALConfig{SegmentBytes: 32}, 0, 1)
		for i := 0; i < 6; i++ {
			w.Commit(ctx, []Record{{Part: 0, Mut: mut(fmt.Sprintf("k%d", i), "vvvvvvvv", uint64(i+1))}})
		}
		floor, _ := w.Position()
		man := &Manifest{Seq: 1, Floor: floor, LSN: 7, Stamp: 6}
		if err := WriteCheckpoint(ctx, be, "sn0", man, []wire.Mutation{mut("a", "1", 1)}, 0); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		w.TruncateBefore(ctx, floor)

		objs, err := RecoveryObjects(ctx, be, "sn0")
		if err != nil {
			t.Errorf("objects: %v", err)
			return
		}
		if len(objs) == 0 {
			t.Fatal("no recovery objects")
		}
		sawChunk, sawSeg := false, false
		for _, o := range objs {
			switch {
			case IsChunk("sn0", o):
				sawChunk = true
			case IsSegment("sn0", o):
				sawSeg = true
				if idx, ok := segIndex(o); !ok || idx < floor {
					t.Errorf("recovery lists segment below floor: %s", o)
				}
			default:
				t.Errorf("unexpected recovery object %s", o)
			}
		}
		if !sawChunk || !sawSeg {
			t.Errorf("want chunks and segments, got %v", objs)
		}
	})
}

// TestBlobStagedLostWithoutSync pins the Append/Sync crash semantics the
// crash-point harness relies on: staged bytes are invisible to Get until
// Sync promotes them.
func TestBlobStagedLostWithoutSync(t *testing.T) {
	seed := testutil.Seed(t, 106)
	runSim(t, seed, func(ctx env.Ctx) {
		be := NewMem()
		be.Append(ctx, "x", []byte("abc"))
		if _, err := be.Get(ctx, "x"); err != ErrNotExist {
			t.Errorf("staged object visible before sync: %v", err)
		}
		be.Sync(ctx, "x")
		data, err := be.Get(ctx, "x")
		if err != nil || !bytes.Equal(data, []byte("abc")) {
			t.Errorf("after sync: %q err=%v", data, err)
		}
		be.Append(ctx, "x", []byte("def"))
		data, _ = be.Get(ctx, "x")
		if !bytes.Equal(data, []byte("abc")) {
			t.Errorf("unsynced append leaked: %q", data)
		}
	})
}

// TestBlobLatencyDeterministic pins the latency model: same profile, same
// calls, same virtual elapsed time.
func TestBlobLatencyDeterministic(t *testing.T) {
	elapsed := func() time.Duration {
		var d time.Duration
		runSim(t, 7, func(ctx env.Ctx) {
			be := NewBlob(S3Profile())
			start := ctx.Now()
			be.Put(ctx, "a", make([]byte, 1<<20))
			be.Append(ctx, "b", make([]byte, 4096))
			be.Sync(ctx, "b")
			be.Get(ctx, "a")
			be.List(ctx, "")
			d = ctx.Now() - start
		})
		return d
	}
	d1, d2 := elapsed(), elapsed()
	if d1 != d2 {
		t.Fatalf("blob latency not deterministic: %v != %v", d1, d2)
	}
	if d1 < 4*time.Millisecond {
		t.Fatalf("latency model charged too little: %v", d1)
	}
}

func TestFileBackend(t *testing.T) {
	dir := t.TempDir()
	seed := testutil.Seed(t, 107)
	runSim(t, seed, func(ctx env.Ctx) {
		be, err := NewFile(dir)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		defer be.Close()
		w := OpenWAL(be, "sn0", WALConfig{SegmentBytes: 64}, 0, 1)
		for i := 0; i < 5; i++ {
			if err := w.Commit(ctx, []Record{{Part: 0, Mut: mut(fmt.Sprintf("k%d", i), "v", uint64(i+1))}}); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
		man := &Manifest{Seq: 1, Floor: 0, LSN: 6, Stamp: 5}
		if err := WriteCheckpoint(ctx, be, "sn0", man, []wire.Mutation{mut("a", "1", 1)}, 0); err != nil {
			t.Errorf("checkpoint: %v", err)
			return
		}

		// A fresh handle over the same directory sees everything: this is
		// the telld restart path.
		be2, err := NewFile(dir)
		if err != nil {
			t.Errorf("reopen: %v", err)
			return
		}
		defer be2.Close()
		n := 0
		st, err := ReplayWAL(ctx, be2, "sn0", 0, func(*Record) { n++ })
		if err != nil || n != 5 || st.Torn {
			t.Errorf("replay: n=%d torn=%v err=%v", n, st.Torn, err)
		}
		loaded, err := LoadCheckpoint(ctx, be2, "sn0", func(*wire.Mutation) {})
		if err != nil || loaded == nil || loaded.Seq != 1 {
			t.Errorf("load: %+v err=%v", loaded, err)
		}

		// Wipe models losing the disk.
		be2.Wipe("sn0/")
		if objs, _ := be2.List(ctx, "sn0/"); len(objs) != 0 {
			t.Errorf("objects survived wipe: %v", objs)
		}
	})
}
