package durable

import (
	"errors"
	"fmt"
	"hash/crc32"

	"tell/internal/wire"
)

// Record is one WAL entry: a partition mutation with a log sequence number.
// Frame layout on disk:
//
//	[magic 1B][payload-len u32 LE][crc32(payload) u32 LE][payload]
//
// The CRC covers only the payload; the fixed header lets replay distinguish
// a torn tail (frame cut short by a crash) from corruption (full frame
// present, checksum wrong).
type Record struct {
	LSN  uint64
	Part uint64
	Mut  wire.Mutation
}

const (
	recMagic      = 0xD7
	recHeaderSize = 9
	// maxRecordSize bounds the declared payload length; anything larger is
	// corruption, not a record this package could have written.
	maxRecordSize = 1 << 24
)

// ErrCorrupt reports a record frame that is structurally complete but
// invalid: bad magic, an implausible length, a checksum mismatch, or a
// payload that does not decode. Unlike a torn tail this is never expected,
// so replay surfaces it as an error.
var ErrCorrupt = errors.New("durable: corrupt record")

// TornError reports a record frame cut short at the end of a buffer — the
// signature of a torn write: the crash interrupted an append before Sync.
// Replay treats a torn tail on the final segment as the expected end of the
// log and discards the partial frame.
type TornError struct {
	// Off is the buffer offset where the torn frame starts; Have and Need
	// are the bytes present and required.
	Off, Have, Need int
}

func (e *TornError) Error() string {
	return fmt.Sprintf("durable: torn record at offset %d: have %d of %d bytes", e.Off, e.Have, e.Need)
}

// IsTorn reports whether err is a torn-write detection.
func IsTorn(err error) bool {
	var t *TornError
	return errors.As(err, &t)
}

// AppendRecord appends rec's frame to dst and returns the extended slice.
func AppendRecord(dst []byte, rec *Record) []byte {
	w := wire.NewWriter(32 + len(rec.Mut.Key) + len(rec.Mut.Val))
	w.Uvarint(rec.LSN)
	w.Uvarint(rec.Part)
	appendMutation(w, &rec.Mut)
	p := w.Bytes()

	dst = append(dst, recMagic)
	var hdr [8]byte
	putU32(hdr[0:4], uint32(len(p)))
	putU32(hdr[4:8], crc32.ChecksumIEEE(p))
	dst = append(dst, hdr[:]...)
	return append(dst, p...)
}

// DecodeRecord parses the frame at the start of b. It returns the record,
// the number of bytes consumed, and an error: a *TornError when b ends
// before the frame does, or ErrCorrupt (wrapped) when the frame is invalid.
// Decoded keys and values are copied out of b.
func DecodeRecord(b []byte) (Record, int, error) {
	var rec Record
	if len(b) < recHeaderSize {
		return rec, 0, &TornError{Have: len(b), Need: recHeaderSize}
	}
	if b[0] != recMagic {
		return rec, 0, fmt.Errorf("%w: bad magic 0x%02x", ErrCorrupt, b[0])
	}
	plen := int(getU32(b[1:5]))
	if plen > maxRecordSize {
		return rec, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, plen)
	}
	if len(b) < recHeaderSize+plen {
		return rec, 0, &TornError{Have: len(b), Need: recHeaderSize + plen}
	}
	p := b[recHeaderSize : recHeaderSize+plen]
	if sum := crc32.ChecksumIEEE(p); sum != getU32(b[5:9]) {
		return rec, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := wire.NewReader(p)
	rec.LSN = r.Uvarint()
	rec.Part = r.Uvarint()
	readMutation(r, &rec.Mut)
	if err := r.Close(); err != nil {
		return rec, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return rec, recHeaderSize + plen, nil
}

// DecodeSegment walks every frame in a segment image, invoking fn per
// record. It returns the number of bytes consumed cleanly; err is nil when
// the image ends exactly on a frame boundary, a *TornError for a partial
// trailing frame, or an ErrCorrupt wrap for an invalid frame. Records
// before the bad frame have already been delivered.
func DecodeSegment(b []byte, fn func(*Record)) (int, error) {
	off := 0
	for off < len(b) {
		rec, n, err := DecodeRecord(b[off:])
		if err != nil {
			var t *TornError
			if errors.As(err, &t) {
				t.Off = off
			}
			return off, err
		}
		fn(&rec)
		off += n
	}
	return off, nil
}

// appendMutation writes the mutation fields shared by WAL records and
// checkpoint chunks.
func appendMutation(w *wire.Writer, m *wire.Mutation) {
	w.BytesN(m.Key)
	w.BytesN(m.Val)
	w.Uvarint(m.Stamp)
	w.Bool(m.Deleted)
	w.Bool(m.Counter)
	w.Varint(m.CtrVal)
}

// readMutation is the inverse of appendMutation; Key and Val are copied.
func readMutation(r *wire.Reader, m *wire.Mutation) {
	m.Key = append([]byte(nil), r.BytesN()...)
	m.Val = append([]byte(nil), r.BytesN()...)
	m.Stamp = r.Uvarint()
	m.Deleted = r.Bool()
	m.Counter = r.Bool()
	m.CtrVal = r.Varint()
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
