// Package durable gives storage nodes a persistence tier: a write-ahead log
// of partition mutations plus fuzzy checkpoints of the memtable, both kept
// as named objects behind a pluggable Backend. Two backends ship with the
// package — a local filesystem implementation for real deployments and an
// in-memory remote-blob model (S3/DynamoDB-style latency, deterministic
// under simulation) for experiments.
//
// The durability contract follows RamCloud's recovery design (§6.1 of the
// paper): a master logs every mutation to a durable backup before
// acknowledging, checkpoints bound replay length, and after the master dies
// its log is scattered across surviving nodes and replayed in parallel.
// Because replicas and recovered masters apply mutations if-newer by stamp,
// replaying an overlapping checkpoint-plus-log suffix in any order converges
// to the pre-crash state.
//
// All blocking work is charged through env.Ctx, so the package is safe for
// the deterministic simulator: no wall clock, no unseeded randomness.
package durable

import (
	"errors"

	"tell/internal/env"
)

// ErrNotExist is returned by Get when the named object has never been made
// durable.
var ErrNotExist = errors.New("durable: object does not exist")

// Backend is a named-object store with append semantics. Names are
// slash-separated paths; callers namespace them per storage node so that a
// survivor can read a dead node's objects during recovery.
//
// Append/Sync model a staged upload: appended bytes become durable (visible
// to Get and crash-surviving) only once Sync returns. Put is atomic — a
// crash concurrent with Put leaves either the old object or the new one,
// never a mix. These are exactly the boundaries the crash-point test
// harness enumerates.
type Backend interface {
	// Put atomically creates or replaces the object.
	Put(ctx env.Ctx, name string, data []byte) error
	// Append stages data at the end of the object, creating it if needed.
	Append(ctx env.Ctx, name string, data []byte) error
	// Sync makes all staged appends of the object durable.
	Sync(ctx env.Ctx, name string) error
	// Get returns the durable contents of the object.
	Get(ctx env.Ctx, name string) ([]byte, error)
	// List returns the names of durable objects with the given prefix, in
	// lexicographic order.
	List(ctx env.Ctx, prefix string) ([]string, error)
	// Delete removes the object. Deleting a missing object is not an error.
	Delete(ctx env.Ctx, name string) error
}

// Wiper is implemented by backends whose contents can be destroyed
// instantly, modelling a crash that takes the disk with it. It deliberately
// takes no ctx: a disk loss is an event, not an operation the victim
// performs.
type Wiper interface {
	// Wipe removes every object whose name starts with prefix.
	Wipe(prefix string)
}
