package btree

import (
	"bytes"
	"errors"
	"fmt"

	"tell/internal/env"
	"tell/internal/sanitize"
	"tell/internal/store"
)

// Errors returned by tree operations.
var (
	// ErrRetriesExhausted means contention kept an operation from
	// completing within the retry budget.
	ErrRetriesExhausted = errors.New("btree: retries exhausted")
)

// Tree is a processing node's handle to one shared distributed B+tree.
// Multiple Trees (one per PN) operate on the same stored structure
// concurrently; each keeps its own inner-node cache.
type Tree struct {
	name string
	sc   *store.Client

	// MaxKeys is the fanout bound per node.
	MaxKeys int
	// CacheInner toggles the inner-node cache (§5.3.1). Disabled only by
	// the caching ablation benchmark.
	CacheInner bool
	// Retries bounds optimistic retry loops.
	Retries int

	mu        sanitize.Mutex
	cache     map[uint64]*node
	root      *rootPtr
	idNext    uint64
	idEnd     uint64
	reads     uint64
	cacheHits uint64
}

// idRangeSize is how many node ids one counter bump reserves.
const idRangeSize = 64

// New returns a handle to the tree stored under name. The tree must have
// been created once with Create (or BulkBuild).
func New(name string, sc *store.Client) *Tree {
	t := &Tree{
		name:       name,
		sc:         sc,
		MaxKeys:    64,
		CacheInner: true,
		Retries:    64,
		cache:      make(map[uint64]*node),
	}
	t.mu.SetName("btree.Tree.mu")
	return t
}

// Stats returns (store reads issued, inner-cache hits).
func (t *Tree) Stats() (reads, hits uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reads, t.cacheHits
}

// Create initializes an empty tree: a single empty leaf as root. It is not
// an error if the tree already exists (first creator wins).
func Create(ctx env.Ctx, name string, sc *store.Client) error {
	leaf := &node{id: 1}
	if _, err := sc.CondPut(ctx, nodeKey(name, 1), leaf.encode(), 0); err != nil && err != store.ErrConflict {
		return err
	}
	rp := rootPtr{rootID: 1, height: 0}
	if _, err := sc.CondPut(ctx, rootKey(name), rp.encode(), 0); err != nil && err != store.ErrConflict {
		return err
	}
	// Make sure the id counter is past the initial leaf's id 1. A racing
	// creator may bump it twice; skipped ids are harmless.
	if v, err := sc.CounterAdd(ctx, ctrKey(name), 0); err != nil {
		return err
	} else if v < 1 {
		if _, err := sc.CounterAdd(ctx, ctrKey(name), 1); err != nil {
			return err
		}
	}
	return nil
}

// allocID reserves a fresh node id (range-cached per handle).
func (t *Tree) allocID(ctx env.Ctx) (uint64, error) {
	t.mu.Lock()
	if t.idNext <= t.idEnd && t.idNext != 0 {
		id := t.idNext
		t.idNext++
		t.mu.Unlock()
		return id, nil
	}
	t.mu.Unlock()
	hi, err := t.sc.CounterAdd(ctx, ctrKey(t.name), idRangeSize)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.idNext = uint64(hi) - idRangeSize + 1
	t.idEnd = uint64(hi)
	id := t.idNext
	t.idNext++
	t.mu.Unlock()
	return id, nil
}

// loadRoot returns the (possibly cached) root pointer.
func (t *Tree) loadRoot(ctx env.Ctx, fresh bool) (rootPtr, error) {
	t.mu.Lock()
	if !fresh && t.root != nil {
		rp := *t.root
		t.mu.Unlock()
		return rp, nil
	}
	t.mu.Unlock()
	raw, _, err := t.sc.Get(ctx, rootKey(t.name))
	if err != nil {
		return rootPtr{}, err
	}
	rp, err := decodeRootPtr(raw)
	if err != nil {
		return rootPtr{}, err
	}
	t.mu.Lock()
	t.root = &rp
	t.mu.Unlock()
	return rp, nil
}

// loadNode fetches a node. Inner nodes may be served from and are added to
// the cache; leaves always come from the store with their LL stamp.
func (t *Tree) loadNode(ctx env.Ctx, id uint64, wantLeaf bool) (*node, uint64, error) {
	if !wantLeaf && t.CacheInner {
		t.mu.Lock()
		if n, ok := t.cache[id]; ok {
			t.cacheHits++
			t.mu.Unlock()
			return n, 0, nil
		}
		t.mu.Unlock()
	}
	raw, stamp, err := t.sc.Get(ctx, nodeKey(t.name, id))
	if err != nil {
		return nil, 0, err
	}
	t.mu.Lock()
	t.reads++
	t.mu.Unlock()
	n, err := decodeNode(id, raw)
	if err != nil {
		return nil, 0, err
	}
	if !n.leaf() && t.CacheInner {
		t.mu.Lock()
		t.cache[id] = n
		t.mu.Unlock()
	}
	return n, stamp, nil
}

// invalidate drops a node from the cache (stale parent detected, §5.3.1).
func (t *Tree) invalidate(id uint64) {
	t.mu.Lock()
	delete(t.cache, id)
	t.mu.Unlock()
}

// invalidateAll clears the cache and root pointer; used when the structure
// changed under us in a way right-moves cannot absorb.
func (t *Tree) invalidateAll() {
	t.mu.Lock()
	t.cache = make(map[uint64]*node)
	t.root = nil
	t.mu.Unlock()
}

// pathEntry is a visited node during descent.
type pathEntry struct {
	n     *node
	stamp uint64 // only set for nodes fetched fresh (leaves)
}

// descend walks from the root to the leaf covering key, applying B-link
// right-moves at every level, and returns the visited path (root first).
// If moves happened at leaf level, the cached parent is refreshed per
// §5.3.1's consistency rule.
func (t *Tree) descend(ctx env.Ctx, key []byte) ([]pathEntry, error) {
	for attempt := 0; attempt < t.Retries; attempt++ {
		path, err := t.tryDescend(ctx, key)
		if err == nil {
			return path, nil
		}
		if err != store.ErrNotFound {
			return nil, err
		}
		// A cached pointer led to a node that no longer exists; drop
		// caches and retry from a fresh root.
		t.invalidateAll()
	}
	return nil, ErrRetriesExhausted
}

func (t *Tree) tryDescend(ctx env.Ctx, key []byte) ([]pathEntry, error) {
	rp, err := t.loadRoot(ctx, false)
	if err != nil {
		if err == store.ErrNotFound {
			// Possibly a stale cached pointer; refetch once.
			if rp, err = t.loadRoot(ctx, true); err != nil {
				return nil, err
			}
		} else {
			return nil, err
		}
	}
	var path []pathEntry
	id := rp.rootID
	level := rp.height
	for {
		wantLeaf := level == 0
		n, stamp, err := t.loadNode(ctx, id, wantLeaf)
		if err != nil {
			if err == store.ErrNotFound && len(path) == 0 {
				// Root pointer was stale.
				if rp2, err2 := t.loadRoot(ctx, true); err2 == nil && rp2.rootID != id {
					id = rp2.rootID
					level = rp2.height
					continue
				}
			}
			return nil, err
		}
		// B-link move right while the key is beyond this node's range.
		moved := 0
		for !n.covers(key) && n.next != 0 {
			id = n.next
			n, stamp, err = t.loadNode(ctx, id, wantLeaf)
			if err != nil {
				return nil, err
			}
			moved++
		}
		if moved > 0 && len(path) > 0 {
			// The parent's routing was stale (the child split):
			// refresh it so future traversals go direct.
			t.invalidate(path[len(path)-1].n.id)
		}
		path = append(path, pathEntry{n: n, stamp: stamp})
		if n.leaf() {
			return path, nil
		}
		if len(n.children) == 0 {
			return nil, fmt.Errorf("btree: inner node %d has no children", n.id)
		}
		id = n.childFor(key)
		level = n.level - 1
	}
}

// Lookup returns the value stored under key.
func (t *Tree) Lookup(ctx env.Ctx, key []byte) ([]byte, bool, error) {
	path, err := t.descend(ctx, key)
	if err != nil {
		return nil, false, err
	}
	leaf := path[len(path)-1].n
	if i, ok := leaf.findKey(key); ok {
		return leaf.vals[i], true, nil
	}
	return nil, false, nil
}

// Insert adds (key, val) if key is absent. It reports whether the key
// already existed (in which case nothing changes).
func (t *Tree) Insert(ctx env.Ctx, key, val []byte) (existed bool, err error) {
	for attempt := 0; attempt < t.Retries; attempt++ {
		path, err := t.descend(ctx, key)
		if err != nil {
			return false, err
		}
		leaf := path[len(path)-1].n
		stamp := path[len(path)-1].stamp
		if _, ok := leaf.findKey(key); ok {
			return true, nil
		}
		nl := leaf.clone()
		i, _ := nl.findKey(key)
		nl.insertLeaf(i, key, val)
		if len(nl.keys) <= t.MaxKeys {
			_, err := t.sc.CondPut(ctx, nodeKey(t.name, leaf.id), nl.encode(), stamp)
			if err == nil {
				return false, nil
			}
			if err == store.ErrConflict || err == store.ErrNotFound {
				continue // raced; retry from descent
			}
			return false, err
		}
		// Split required.
		done, err := t.splitLeafAndInsert(ctx, path, nl, stamp)
		if err != nil {
			return false, err
		}
		if done {
			return false, nil
		}
	}
	return false, ErrRetriesExhausted
}

// splitLeafAndInsert installs nl (already containing the new key and
// exceeding MaxKeys) as a split pair. Returns done=false to signal a raced
// conflict needing a fresh retry.
func (t *Tree) splitLeafAndInsert(ctx env.Ctx, path []pathEntry, nl *node, stamp uint64) (bool, error) {
	rightID, err := t.allocID(ctx)
	if err != nil {
		return false, err
	}
	mid := len(nl.keys) / 2
	sep := nl.keys[mid]
	right := &node{
		id:      rightID,
		level:   0,
		next:    nl.next,
		highKey: nl.highKey,
		keys:    append([][]byte(nil), nl.keys[mid:]...),
		vals:    append([][]byte(nil), nl.vals[mid:]...),
	}
	left := &node{
		id:      nl.id,
		level:   0,
		next:    rightID,
		highKey: sep,
		keys:    append([][]byte(nil), nl.keys[:mid]...),
		vals:    append([][]byte(nil), nl.vals[:mid]...),
	}
	// 1. Create the right node (fresh id: cannot conflict).
	if _, err := t.sc.CondPut(ctx, nodeKey(t.name, rightID), right.encode(), 0); err != nil {
		return false, err
	}
	// 2. Shrink the left node conditionally: this is the linearization
	// point of the split.
	if _, err := t.sc.CondPut(ctx, nodeKey(t.name, left.id), left.encode(), stamp); err != nil {
		// Raced: orphan the right node and retry.
		t.sc.Delete(ctx, nodeKey(t.name, rightID), 0)
		if err == store.ErrConflict || err == store.ErrNotFound {
			return false, nil
		}
		return false, err
	}
	if sc := ctx.Trace(); sc.R.Enabled() {
		sc.R.Instant(sc.Span, ctx.Node().Name(), "btree-split-leaf",
			int64(left.id), int64(rightID))
	}
	// 3. Post the separator to the parent level. Readers already work via
	// the B-link pointer; this step only restores fast routing.
	if err := t.insertSeparator(ctx, path, len(path)-2, sep, rightID, left.id); err != nil {
		return false, err
	}
	return true, nil
}

// insertSeparator inserts (sep → rightID) into the inner level pathIdx
// (path[pathIdx] is the remembered parent; -1 means the split node was the
// root). leftID is the split node, used for idempotence and root creation.
func (t *Tree) insertSeparator(ctx env.Ctx, path []pathEntry, pathIdx int, sep []byte, rightID, leftID uint64) error {
	if pathIdx < 0 {
		return t.growRoot(ctx, sep, leftID, rightID)
	}
	parentID := path[pathIdx].n.id
	level := path[pathIdx].n.level
	for attempt := 0; attempt < t.Retries; attempt++ {
		raw, stamp, err := t.sc.Get(ctx, nodeKey(t.name, parentID))
		if err == store.ErrNotFound {
			// Parent vanished (e.g. superseded root): re-descend to
			// locate the current parent at this level.
			p, err := t.descendToLevel(ctx, sep, level)
			if err != nil {
				return err
			}
			parentID = p
			continue
		}
		if err != nil {
			return err
		}
		t.mu.Lock()
		t.reads++
		t.mu.Unlock()
		parent, err := decodeNode(parentID, raw)
		if err != nil {
			return err
		}
		// Move right if the separator belongs to a later sibling.
		if !parent.covers(sep) {
			if parent.next == 0 {
				return fmt.Errorf("btree: separator beyond rightmost parent")
			}
			parentID = parent.next
			continue
		}
		if parent.hasChild(rightID) {
			t.invalidate(parent.id)
			return nil // another retry already posted it
		}
		np := parent.clone()
		np.insertChild(sep, rightID)
		if len(np.keys) <= t.MaxKeys {
			if _, err := t.sc.CondPut(ctx, nodeKey(t.name, parentID), np.encode(), stamp); err != nil {
				if err == store.ErrConflict || err == store.ErrNotFound {
					continue
				}
				return err
			}
			t.invalidate(parentID)
			return nil
		}
		// Parent overflows: split it and recurse.
		if err := t.splitInner(ctx, path, pathIdx, np, stamp); err != nil {
			if err == errRaced {
				continue
			}
			return err
		}
		return nil
	}
	return ErrRetriesExhausted
}

// errRaced signals an internal optimistic conflict to the caller's loop.
var errRaced = errors.New("btree: raced")

// splitInner installs the overflowing inner node np as a split pair and
// posts the promoted separator one level up.
func (t *Tree) splitInner(ctx env.Ctx, path []pathEntry, pathIdx int, np *node, stamp uint64) error {
	rightID, err := t.allocID(ctx)
	if err != nil {
		return err
	}
	mid := len(np.keys) / 2
	promoted := np.keys[mid]
	right := &node{
		id:       rightID,
		level:    np.level,
		next:     np.next,
		highKey:  np.highKey,
		keys:     append([][]byte(nil), np.keys[mid+1:]...),
		children: append([]uint64(nil), np.children[mid+1:]...),
	}
	left := &node{
		id:       np.id,
		level:    np.level,
		next:     rightID,
		highKey:  promoted,
		keys:     append([][]byte(nil), np.keys[:mid]...),
		children: append([]uint64(nil), np.children[:mid+1]...),
	}
	if _, err := t.sc.CondPut(ctx, nodeKey(t.name, rightID), right.encode(), 0); err != nil {
		return err
	}
	if _, err := t.sc.CondPut(ctx, nodeKey(t.name, left.id), left.encode(), stamp); err != nil {
		t.sc.Delete(ctx, nodeKey(t.name, rightID), 0)
		if err == store.ErrConflict || err == store.ErrNotFound {
			return errRaced
		}
		return err
	}
	t.invalidate(left.id)
	if sc := ctx.Trace(); sc.R.Enabled() {
		sc.R.Instant(sc.Span, ctx.Node().Name(), "btree-split-inner",
			int64(left.id), int64(rightID))
	}
	return t.insertSeparator(ctx, path, pathIdx-1, promoted, rightID, left.id)
}

// growRoot installs a new root above a split old root.
func (t *Tree) growRoot(ctx env.Ctx, sep []byte, leftID, rightID uint64) error {
	// The new root sits one level above the split (left) node.
	leftNode, _, err := t.loadNodeFresh(ctx, leftID)
	if err != nil {
		return err
	}
	parentLevel := leftNode.level + 1
	for attempt := 0; attempt < t.Retries; attempt++ {
		raw, stamp, err := t.sc.Get(ctx, rootKey(t.name))
		if err != nil {
			return err
		}
		rp, err := decodeRootPtr(raw)
		if err != nil {
			return err
		}
		if rp.rootID != leftID {
			// Someone else already grew the root; our separator must
			// go into the existing parent level instead.
			parentID, err := t.descendToLevel(ctx, sep, parentLevel)
			if err != nil {
				return err
			}
			fake := []pathEntry{{n: &node{id: parentID, level: parentLevel}}}
			return t.insertSeparator(ctx, fake, 0, sep, rightID, leftID)
		}
		newRootID, err := t.allocID(ctx)
		if err != nil {
			return err
		}
		newRoot := &node{
			id:       newRootID,
			level:    leftNode.level + 1,
			keys:     [][]byte{sep},
			children: []uint64{leftID, rightID},
		}
		if _, err := t.sc.CondPut(ctx, nodeKey(t.name, newRootID), newRoot.encode(), 0); err != nil {
			return err
		}
		nrp := rootPtr{rootID: newRootID, height: newRoot.level}
		if _, err := t.sc.CondPut(ctx, rootKey(t.name), nrp.encode(), stamp); err != nil {
			t.sc.Delete(ctx, nodeKey(t.name, newRootID), 0)
			if err == store.ErrConflict {
				continue
			}
			return err
		}
		t.mu.Lock()
		t.root = &nrp
		t.mu.Unlock()
		if sc := ctx.Trace(); sc.R.Enabled() {
			sc.R.Instant(sc.Span, ctx.Node().Name(), "btree-grow-root",
				int64(newRootID), int64(newRoot.level))
		}
		return nil
	}
	return ErrRetriesExhausted
}

// loadNodeFresh fetches a node bypassing the cache.
func (t *Tree) loadNodeFresh(ctx env.Ctx, id uint64) (*node, uint64, error) {
	raw, stamp, err := t.sc.Get(ctx, nodeKey(t.name, id))
	if err != nil {
		return nil, 0, err
	}
	t.mu.Lock()
	t.reads++
	t.mu.Unlock()
	n, err := decodeNode(id, raw)
	return n, stamp, err
}

// descendToLevel finds the id of the node at the given level covering key,
// bypassing the cache.
func (t *Tree) descendToLevel(ctx env.Ctx, key []byte, level int) (uint64, error) {
	rp, err := t.loadRoot(ctx, true)
	if err != nil {
		return 0, err
	}
	id := rp.rootID
	for {
		n, _, err := t.loadNodeFresh(ctx, id)
		if err != nil {
			return 0, err
		}
		for !n.covers(key) && n.next != 0 {
			id = n.next
			n, _, err = t.loadNodeFresh(ctx, id)
			if err != nil {
				return 0, err
			}
		}
		if n.level == level {
			return id, nil
		}
		if n.leaf() {
			return 0, fmt.Errorf("btree: level %d not found", level)
		}
		id = n.childFor(key)
	}
}

// Delete removes key from the tree, reporting whether it was present.
// Structural shrinking is lazy: emptied leaves stay linked (readers skip
// them via B-link pointers), matching the paper's lazy index GC stance.
func (t *Tree) Delete(ctx env.Ctx, key []byte) (bool, error) {
	for attempt := 0; attempt < t.Retries; attempt++ {
		path, err := t.descend(ctx, key)
		if err != nil {
			return false, err
		}
		leaf := path[len(path)-1].n
		stamp := path[len(path)-1].stamp
		i, ok := leaf.findKey(key)
		if !ok {
			return false, nil
		}
		nl := leaf.clone()
		nl.removeLeaf(i)
		_, err = t.sc.CondPut(ctx, nodeKey(t.name, leaf.id), nl.encode(), stamp)
		if err == nil {
			return true, nil
		}
		if err == store.ErrConflict || err == store.ErrNotFound {
			continue
		}
		return false, err
	}
	return false, ErrRetriesExhausted
}

// Update replaces the value under key, reporting whether it was present.
func (t *Tree) Update(ctx env.Ctx, key, val []byte) (bool, error) {
	for attempt := 0; attempt < t.Retries; attempt++ {
		path, err := t.descend(ctx, key)
		if err != nil {
			return false, err
		}
		leaf := path[len(path)-1].n
		stamp := path[len(path)-1].stamp
		i, ok := leaf.findKey(key)
		if !ok {
			return false, nil
		}
		nl := leaf.clone()
		nl.vals[i] = val
		_, err = t.sc.CondPut(ctx, nodeKey(t.name, leaf.id), nl.encode(), stamp)
		if err == nil {
			return true, nil
		}
		if err == store.ErrConflict || err == store.ErrNotFound {
			continue
		}
		return false, err
	}
	return false, ErrRetriesExhausted
}

// Scan visits entries with lo <= key < hi in ascending order, following the
// leaf chain. fn returning false stops the scan. hi == nil means unbounded.
func (t *Tree) Scan(ctx env.Ctx, lo, hi []byte, fn func(key, val []byte) bool) error {
	path, err := t.descend(ctx, lo)
	if err != nil {
		return err
	}
	leaf := path[len(path)-1].n
	for {
		for i := range leaf.keys {
			if bytes.Compare(leaf.keys[i], lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(leaf.keys[i], hi) >= 0 {
				return nil
			}
			if !fn(leaf.keys[i], leaf.vals[i]) {
				return nil
			}
		}
		if leaf.next == 0 {
			return nil
		}
		if hi != nil && leaf.highKey != nil && bytes.Compare(leaf.highKey, hi) >= 0 {
			return nil
		}
		leaf, _, err = t.loadNode(ctx, leaf.next, true)
		if err != nil {
			return err
		}
	}
}
