// Package btree implements the paper's latch-free distributed B+tree
// (§5.3). Every tree node is stored as one key-value pair in the shared
// record store; node updates are synchronized across processing nodes with
// LL/SC conditional writes, never latches. The structure is a B-link tree
// (Lehman-Yao): every node carries a high key and a right-sibling pointer,
// so readers that race with a split simply "move right" instead of
// retrying from the root.
//
// Inner nodes are cached on the processing node; leaf nodes are always
// fetched from the store (§5.3.1). When a leaf's range no longer matches
// what the cached parent promised, the parent is refreshed from the store.
//
// Indexes are version-unaware (§5.3.2): one entry per record, not per
// version, so entries are only inserted when the indexed key changes, and
// readers must re-validate fetched records against their snapshots.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"tell/internal/wire"
)

// node is the in-memory form of one tree node.
type node struct {
	id    uint64
	level int    // 0 = leaf
	next  uint64 // right sibling; 0 = rightmost
	// highKey is the exclusive upper bound of this node's key space;
	// nil means +infinity (rightmost node of its level).
	highKey []byte
	keys    [][]byte
	// leaf payloads (level 0).
	vals [][]byte
	// child node ids (level > 0): len(children) == len(keys)+1;
	// children[i] covers keys < keys[i], children[len(keys)] the rest.
	children []uint64
}

func (n *node) leaf() bool { return n.level == 0 }

// covers reports whether key belongs to this node's range (no right-move
// needed).
func (n *node) covers(key []byte) bool {
	return n.highKey == nil || bytes.Compare(key, n.highKey) < 0
}

// findKey returns the position of key in n.keys and whether it is present.
func (n *node) findKey(key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
}

// childFor returns the child id to follow for key.
func (n *node) childFor(key []byte) uint64 {
	// First key strictly greater than `key` bounds the child index.
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return n.children[lo]
}

// clone returns a deep-enough copy for mutation (slices reallocated, key
// and value bytes shared).
func (n *node) clone() *node {
	c := &node{id: n.id, level: n.level, next: n.next, highKey: n.highKey}
	c.keys = append([][]byte(nil), n.keys...)
	c.vals = append([][]byte(nil), n.vals...)
	c.children = append([]uint64(nil), n.children...)
	return c
}

// insertLeaf inserts (key, val) into a leaf at position i.
func (n *node) insertLeaf(i int, key, val []byte) {
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = val
}

// removeLeaf removes the entry at position i.
func (n *node) removeLeaf(i int) {
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
}

// insertChild inserts separator sep with right child at the proper slot of
// an inner node.
func (n *node) insertChild(sep []byte, child uint64) {
	i, _ := n.findKey(sep)
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, 0)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = child
}

// hasChild reports whether the inner node references child (used to make
// separator insertion idempotent across retries).
func (n *node) hasChild(child uint64) bool {
	for _, c := range n.children {
		if c == child {
			return true
		}
	}
	return false
}

// encode serializes the node for storage.
func (n *node) encode() []byte {
	size := 16
	for i := range n.keys {
		size += len(n.keys[i]) + 4
	}
	for i := range n.vals {
		size += len(n.vals[i]) + 4
	}
	size += 8 * len(n.children)
	w := wire.NewWriter(size)
	w.Uvarint(uint64(n.level))
	w.Uvarint(n.next)
	if n.highKey == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		w.BytesN(n.highKey)
	}
	w.Uvarint(uint64(len(n.keys)))
	for _, k := range n.keys {
		w.BytesN(k)
	}
	if n.leaf() {
		for _, v := range n.vals {
			w.BytesN(v)
		}
	} else {
		for _, c := range n.children {
			w.Uvarint(c)
		}
	}
	return w.Bytes()
}

// decodeNode parses a stored node.
func decodeNode(id uint64, b []byte) (*node, error) {
	r := wire.NewReader(b)
	n := &node{id: id}
	n.level = int(r.Uvarint())
	n.next = r.Uvarint()
	if r.Bool() {
		n.highKey = append([]byte(nil), r.BytesN()...)
	}
	cnt := r.Count(1)
	n.keys = make([][]byte, cnt)
	for i := range n.keys {
		n.keys[i] = append([]byte(nil), r.BytesN()...)
	}
	if n.leaf() {
		n.vals = make([][]byte, cnt)
		for i := range n.vals {
			n.vals[i] = append([]byte(nil), r.BytesN()...)
		}
	} else {
		n.children = make([]uint64, cnt+1)
		for i := range n.children {
			n.children[i] = r.Uvarint()
		}
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return n, nil
}

// rootPtr is the tree's root record.
type rootPtr struct {
	rootID uint64
	height int // root level
}

func (rp rootPtr) encode() []byte {
	w := wire.NewWriter(12)
	w.Uvarint(rp.rootID)
	w.Uvarint(uint64(rp.height))
	return w.Bytes()
}

func decodeRootPtr(b []byte) (rootPtr, error) {
	r := wire.NewReader(b)
	rp := rootPtr{rootID: r.Uvarint(), height: int(r.Uvarint())}
	if err := r.Close(); err != nil {
		return rootPtr{}, err
	}
	return rp, nil
}

// Store key layout.
func nodeKey(name string, id uint64) []byte {
	k := make([]byte, 0, len(name)+16)
	k = append(k, "idx/"...)
	k = append(k, name...)
	k = append(k, "/n/"...)
	var idb [8]byte
	binary.BigEndian.PutUint64(idb[:], id)
	return append(k, idb[:]...)
}

func rootKey(name string) []byte { return []byte("idx/" + name + "/root") }
func ctrKey(name string) []byte  { return []byte("idx/" + name + "/ctr") }

// sanity guard for debugging output.
func (n *node) String() string {
	kind := "leaf"
	if !n.leaf() {
		kind = fmt.Sprintf("inner(l%d)", n.level)
	}
	return fmt.Sprintf("%s#%d[%d keys, next=%d]", kind, n.id, len(n.keys), n.next)
}
