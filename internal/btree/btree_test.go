package btree_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"tell/internal/btree"
	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/transport"
)

type treeHarness struct {
	k       *sim.Kernel
	envr    env.Full
	net     *transport.SimNet
	cluster *store.Cluster
	pn      env.Node
	client  *store.Client
}

func newTreeHarness(t *testing.T, nodes int) *treeHarness {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 11))
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	pn := envr.NewNode("pn0", 4)
	return &treeHarness{k: k, envr: envr, net: net, cluster: cl, pn: pn, client: cl.NewClient(pn)}
}

func (h *treeHarness) run(t *testing.T, fn func(ctx env.Ctx)) {
	t.Helper()
	done := false
	h.pn.Go("test", func(ctx env.Ctx) {
		fn(ctx)
		done = true
		h.k.Stop()
	})
	if err := h.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test activity did not finish")
	}
	h.k.Shutdown()
}

func key(i int) []byte { return []byte(fmt.Sprintf("k%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("v%d", i)) }

func TestInsertLookupSmall(t *testing.T) {
	h := newTreeHarness(t, 2)
	h.run(t, func(ctx env.Ctx) {
		if err := btree.Create(ctx, "t", h.client); err != nil {
			t.Fatal(err)
		}
		tr := btree.New("t", h.client)
		for i := 0; i < 10; i++ {
			existed, err := tr.Insert(ctx, key(i), val(i))
			if err != nil || existed {
				t.Fatalf("insert %d: existed=%v err=%v", i, existed, err)
			}
		}
		// Duplicate insert reports existed.
		existed, err := tr.Insert(ctx, key(3), []byte("other"))
		if err != nil || !existed {
			t.Fatalf("dup insert: existed=%v err=%v", existed, err)
		}
		for i := 0; i < 10; i++ {
			v, ok, err := tr.Lookup(ctx, key(i))
			if err != nil || !ok || !bytes.Equal(v, val(i)) {
				t.Fatalf("lookup %d: %q %v %v", i, v, ok, err)
			}
		}
		if _, ok, _ := tr.Lookup(ctx, []byte("nope")); ok {
			t.Fatal("phantom key found")
		}
	})
}

func TestInsertCausesSplitsAndStaysConsistent(t *testing.T) {
	h := newTreeHarness(t, 3)
	h.run(t, func(ctx env.Ctx) {
		btree.Create(ctx, "t", h.client)
		tr := btree.New("t", h.client)
		tr.MaxKeys = 8 // force deep trees quickly
		const n = 500
		perm := rand.New(rand.NewSource(1)).Perm(n)
		for _, i := range perm {
			if _, err := tr.Insert(ctx, key(i), val(i)); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
		for i := 0; i < n; i++ {
			v, ok, err := tr.Lookup(ctx, key(i))
			if err != nil || !ok || !bytes.Equal(v, val(i)) {
				t.Fatalf("lookup %d after splits: %v %v", i, ok, err)
			}
		}
		// Full scan returns everything in order.
		var got []string
		if err := tr.Scan(ctx, nil, nil, func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("scan returned %d keys, want %d", len(got), n)
		}
		if !sort.StringsAreSorted(got) {
			t.Fatal("scan out of order")
		}
	})
}

func TestUpdateAndDelete(t *testing.T) {
	h := newTreeHarness(t, 2)
	h.run(t, func(ctx env.Ctx) {
		btree.Create(ctx, "t", h.client)
		tr := btree.New("t", h.client)
		tr.MaxKeys = 8
		for i := 0; i < 100; i++ {
			tr.Insert(ctx, key(i), val(i))
		}
		ok, err := tr.Update(ctx, key(42), []byte("updated"))
		if err != nil || !ok {
			t.Fatalf("update: %v %v", ok, err)
		}
		v, _, _ := tr.Lookup(ctx, key(42))
		if string(v) != "updated" {
			t.Fatalf("value = %q", v)
		}
		if ok, _ := tr.Update(ctx, []byte("ghost"), nil); ok {
			t.Fatal("update of missing key reported ok")
		}
		// Delete half the keys.
		for i := 0; i < 100; i += 2 {
			ok, err := tr.Delete(ctx, key(i))
			if err != nil || !ok {
				t.Fatalf("delete %d: %v %v", i, ok, err)
			}
		}
		if ok, _ := tr.Delete(ctx, key(2)); ok {
			t.Fatal("double delete reported ok")
		}
		for i := 0; i < 100; i++ {
			_, ok, _ := tr.Lookup(ctx, key(i))
			if want := i%2 == 1; ok != want {
				t.Fatalf("key %d present=%v want %v", i, ok, want)
			}
		}
	})
}

func TestScanRange(t *testing.T) {
	h := newTreeHarness(t, 2)
	h.run(t, func(ctx env.Ctx) {
		btree.Create(ctx, "t", h.client)
		tr := btree.New("t", h.client)
		tr.MaxKeys = 8
		for i := 0; i < 200; i++ {
			tr.Insert(ctx, key(i), val(i))
		}
		var got []string
		tr.Scan(ctx, key(50), key(60), func(k, v []byte) bool {
			got = append(got, string(k))
			return true
		})
		if len(got) != 10 || got[0] != string(key(50)) || got[9] != string(key(59)) {
			t.Fatalf("got %v", got)
		}
		// Early termination.
		n := 0
		tr.Scan(ctx, key(0), nil, func(k, v []byte) bool {
			n++
			return n < 7
		})
		if n != 7 {
			t.Fatalf("early stop at %d", n)
		}
	})
}

func TestConcurrentInsertsFromMultiplePNs(t *testing.T) {
	// The latch-free property: several PNs (each with its own Tree handle
	// and cache) insert concurrently; every key must be found afterwards.
	h := newTreeHarness(t, 3)
	const pns = 4
	const perPN = 150
	done := 0
	var trees []*btree.Tree
	setup := false
	h.pn.Go("create", func(ctx env.Ctx) {
		btree.Create(ctx, "t", h.client)
		setup = true
	})
	for p := 0; p < pns; p++ {
		p := p
		node := h.envr.NewNode(fmt.Sprintf("pn%d", p+1), 4)
		client := h.cluster.NewClient(node)
		tr := btree.New("t", client)
		tr.MaxKeys = 8
		trees = append(trees, tr)
		node.Go("inserter", func(ctx env.Ctx) {
			for !setup {
				ctx.Sleep(time.Millisecond)
			}
			for i := 0; i < perPN; i++ {
				k := key(p*perPN + i)
				if _, err := tr.Insert(ctx, k, val(i)); err != nil {
					t.Errorf("pn%d insert %d: %v", p, i, err)
					break
				}
			}
			done++
		})
	}
	h.pn.Go("checker", func(ctx env.Ctx) {
		for done < pns {
			ctx.Sleep(time.Millisecond)
		}
		// Verify through a fresh handle (no warm cache).
		verify := btree.New("t", h.client)
		for i := 0; i < pns*perPN; i++ {
			_, ok, err := verify.Lookup(ctx, key(i))
			if err != nil || !ok {
				t.Errorf("key %d missing after concurrent inserts: %v", i, err)
			}
		}
		count := 0
		verify.Scan(ctx, nil, nil, func(k, v []byte) bool {
			count++
			return true
		})
		if count != pns*perPN {
			t.Errorf("scan count %d, want %d", count, pns*perPN)
		}
		h.k.Stop()
	})
	if err := h.k.RunUntil(sim.Time(3000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if done != pns {
		t.Fatalf("only %d/%d inserters finished", done, pns)
	}
	h.k.Shutdown()
}

func TestConcurrentSameKeyInsertOnlyOneWins(t *testing.T) {
	h := newTreeHarness(t, 2)
	const pns = 4
	existedCount, insertedCount := 0, 0
	done := 0
	setup := false
	h.pn.Go("create", func(ctx env.Ctx) {
		btree.Create(ctx, "t", h.client)
		setup = true
	})
	for p := 0; p < pns; p++ {
		node := h.envr.NewNode(fmt.Sprintf("pn%d", p+1), 2)
		tr := btree.New("t", h.cluster.NewClient(node))
		node.Go("racer", func(ctx env.Ctx) {
			for !setup {
				ctx.Sleep(time.Millisecond)
			}
			existed, err := tr.Insert(ctx, []byte("contended"), []byte("x"))
			if err != nil {
				t.Errorf("insert: %v", err)
			} else if existed {
				existedCount++
			} else {
				insertedCount++
			}
			done++
			if done == pns {
				h.k.Stop()
			}
		})
	}
	if err := h.k.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if insertedCount != 1 || existedCount != pns-1 {
		t.Fatalf("inserted=%d existed=%d", insertedCount, existedCount)
	}
	h.k.Shutdown()
}

func TestInnerNodeCachingReducesReads(t *testing.T) {
	h := newTreeHarness(t, 2)
	h.run(t, func(ctx env.Ctx) {
		btree.Create(ctx, "t", h.client)
		loader := btree.New("t", h.client)
		loader.MaxKeys = 8
		for i := 0; i < 300; i++ {
			loader.Insert(ctx, key(i), val(i))
		}
		lookups := func(cache bool) (reads uint64) {
			tr := btree.New("t", h.cluster.NewClient(h.pn))
			tr.CacheInner = cache
			for i := 0; i < 200; i++ {
				if _, ok, err := tr.Lookup(ctx, key(i%300)); !ok || err != nil {
					t.Fatalf("lookup: %v %v", ok, err)
				}
			}
			r, _ := tr.Stats()
			return r
		}
		withCache := lookups(true)
		withoutCache := lookups(false)
		if withCache >= withoutCache {
			t.Fatalf("caching did not reduce reads: %d >= %d", withCache, withoutCache)
		}
		t.Logf("store reads: cached=%d uncached=%d", withCache, withoutCache)
	})
}

func TestCacheStaysCorrectAcrossRemoteSplits(t *testing.T) {
	// PN A warms its cache, PN B splits nodes; A's reads must stay correct
	// via right-moves and parent refreshes (§5.3.1).
	h := newTreeHarness(t, 2)
	h.run(t, func(ctx env.Ctx) {
		btree.Create(ctx, "t", h.client)
		a := btree.New("t", h.client)
		a.MaxKeys = 8
		for i := 0; i < 50; i++ {
			a.Insert(ctx, key(i*10), val(i*10)) // sparse keys
		}
		// Warm A's cache.
		for i := 0; i < 50; i++ {
			a.Lookup(ctx, key(i*10))
		}
		// B inserts many keys between A's, splitting leaves A knows.
		nodeB := h.envr.NewNode("pnB", 4)
		b := btree.New("t", h.cluster.NewClient(nodeB))
		b.MaxKeys = 8
		for i := 0; i < 500; i++ {
			if _, err := b.Insert(ctx, key(i), val(i)); err != nil {
				t.Fatalf("b insert: %v", err)
			}
		}
		// A (with its stale cache) must see everything.
		for i := 0; i < 500; i++ {
			v, ok, err := a.Lookup(ctx, key(i))
			if err != nil || !ok || !bytes.Equal(v, val(i)) {
				t.Fatalf("stale-cache lookup %d: %v %v", i, ok, err)
			}
		}
	})
}

func TestBulkBuildMatchesInsertedTree(t *testing.T) {
	h := newTreeHarness(t, 3)
	const n = 400
	var pairs []btree.Pair
	for i := 0; i < n; i++ {
		pairs = append(pairs, btree.Pair{Key: key(i), Val: val(i)})
	}
	err := btree.BulkBuild("bulk", pairs, 16, h.cluster.BulkLoad, h.cluster.BulkLoadCounter)
	if err != nil {
		t.Fatal(err)
	}
	h.run(t, func(ctx env.Ctx) {
		tr := btree.New("bulk", h.client)
		tr.MaxKeys = 16
		for i := 0; i < n; i++ {
			v, ok, err := tr.Lookup(ctx, key(i))
			if err != nil || !ok || !bytes.Equal(v, val(i)) {
				t.Fatalf("lookup %d: %v %v", i, ok, err)
			}
		}
		// The bulk-built tree supports normal inserts (ids must not
		// collide with preallocated nodes).
		for i := n; i < n+100; i++ {
			if _, err := tr.Insert(ctx, key(i), val(i)); err != nil {
				t.Fatalf("post-bulk insert %d: %v", i, err)
			}
		}
		count := 0
		tr.Scan(ctx, nil, nil, func(k, v []byte) bool { count++; return true })
		if count != n+100 {
			t.Fatalf("scan count %d, want %d", count, n+100)
		}
	})
}

func TestBulkBuildRejectsUnsortedInput(t *testing.T) {
	pairs := []btree.Pair{{Key: []byte("b")}, {Key: []byte("a")}}
	err := btree.BulkBuild("x", pairs, 16,
		func(k, v []byte) error { return nil },
		func(k []byte, v int64) error { return nil })
	if err == nil {
		t.Fatal("unsorted input accepted")
	}
}

func TestBulkBuildEmpty(t *testing.T) {
	h := newTreeHarness(t, 1)
	if err := btree.BulkBuild("empty", nil, 16, h.cluster.BulkLoad, h.cluster.BulkLoadCounter); err != nil {
		t.Fatal(err)
	}
	h.run(t, func(ctx env.Ctx) {
		tr := btree.New("empty", h.client)
		if _, ok, err := tr.Lookup(ctx, []byte("k")); ok || err != nil {
			t.Fatalf("lookup on empty: %v %v", ok, err)
		}
		if _, err := tr.Insert(ctx, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("insert into empty bulk tree: %v", err)
		}
	})
}

// TestTreePropertyRandomOpsAgainstMap runs randomized operations against a
// reference map.
func TestTreePropertyRandomOpsAgainstMap(t *testing.T) {
	h := newTreeHarness(t, 2)
	h.run(t, func(ctx env.Ctx) {
		btree.Create(ctx, "t", h.client)
		tr := btree.New("t", h.client)
		tr.MaxKeys = 8
		rng := rand.New(rand.NewSource(99))
		ref := make(map[string]string)
		for step := 0; step < 1500; step++ {
			i := rng.Intn(300)
			k := key(i)
			switch rng.Intn(4) {
			case 0, 1:
				v := fmt.Sprintf("v%d-%d", i, step)
				if _, ok := ref[string(k)]; ok {
					tr.Update(ctx, k, []byte(v))
				} else if _, err := tr.Insert(ctx, k, []byte(v)); err != nil {
					t.Fatalf("insert: %v", err)
				}
				ref[string(k)] = v
			case 2:
				ok, err := tr.Delete(ctx, k)
				if err != nil {
					t.Fatalf("delete: %v", err)
				}
				if _, inRef := ref[string(k)]; inRef != ok {
					t.Fatalf("delete presence mismatch for %s", k)
				}
				delete(ref, string(k))
			case 3:
				v, ok, err := tr.Lookup(ctx, k)
				if err != nil {
					t.Fatalf("lookup: %v", err)
				}
				want, inRef := ref[string(k)]
				if ok != inRef || (ok && string(v) != want) {
					t.Fatalf("lookup mismatch for %s: got %q/%v want %q/%v", k, v, ok, want, inRef)
				}
			}
		}
		// Final full comparison via scan.
		got := make(map[string]string)
		tr.Scan(ctx, nil, nil, func(k, v []byte) bool {
			got[string(k)] = string(v)
			return true
		})
		if len(got) != len(ref) {
			t.Fatalf("scan size %d, ref %d", len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("mismatch at %s: %q != %q", k, got[k], v)
			}
		}
	})
}
