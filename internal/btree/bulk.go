package btree

import (
	"bytes"
	"fmt"
)

// Pair is one (key, value) entry for bulk building.
type Pair struct {
	Key, Val []byte
}

// Sink installs a prebuilt cell into the store, bypassing the RPC path
// (store.Cluster.BulkLoad). CounterSink initializes a counter cell.
type (
	Sink        func(key, val []byte) error
	CounterSink func(key []byte, v int64) error
)

// BulkBuild constructs a complete tree from sorted unique pairs and writes
// it through the sinks. It exists for benchmark population: building the
// TPC-C indexes through the insert path would dominate experiment set-up
// time. The resulting structure is identical to what repeated Inserts
// produce (verified by tests) and fully supports concurrent operations
// afterwards.
func BulkBuild(name string, pairs []Pair, maxKeys int, sink Sink, ctrSink CounterSink) error {
	if maxKeys < 4 {
		maxKeys = 4
	}
	for i := 1; i < len(pairs); i++ {
		if bytes.Compare(pairs[i-1].Key, pairs[i].Key) >= 0 {
			return fmt.Errorf("btree: bulk pairs not sorted/unique at %d", i)
		}
	}
	// Target fill: 3/4 of max so post-load inserts do not split at once.
	fill := maxKeys * 3 / 4
	if fill < 2 {
		fill = 2
	}

	nextID := uint64(1)
	alloc := func() uint64 {
		id := nextID
		nextID++
		return id
	}

	// Build the leaf level. lows[i] is the lowest leaf key reachable under
	// level[i]'s subtree: the correct separator and high-key boundary when
	// building the level above.
	var level []*node
	var lows [][]byte
	if len(pairs) == 0 {
		level = []*node{{id: alloc()}}
		lows = [][]byte{nil}
	}
	for off := 0; off < len(pairs); off += fill {
		end := off + fill
		if end > len(pairs) {
			end = len(pairs)
		}
		n := &node{id: alloc()}
		for _, p := range pairs[off:end] {
			n.keys = append(n.keys, p.Key)
			n.vals = append(n.vals, p.Val)
		}
		level = append(level, n)
		lows = append(lows, n.keys[0])
	}
	linkLevel(level, lows)

	// Build inner levels bottom-up until a single root remains.
	height := 0
	for len(level) > 1 {
		height++
		var up []*node
		var upLows [][]byte
		for off := 0; off < len(level); off += fill + 1 {
			end := off + fill + 1
			if end > len(level) {
				end = len(level)
			}
			n := &node{id: alloc(), level: height}
			n.children = append(n.children, level[off].id)
			for i := off + 1; i < end; i++ {
				n.keys = append(n.keys, lows[i])
				n.children = append(n.children, level[i].id)
			}
			up = append(up, n)
			upLows = append(upLows, lows[off])
		}
		linkLevel(up, upLows)
		// Write the completed lower level.
		for _, n := range level {
			if err := sink(nodeKey(name, n.id), n.encode()); err != nil {
				return err
			}
		}
		level = up
		lows = upLows
	}
	root := level[0]
	if err := sink(nodeKey(name, root.id), root.encode()); err != nil {
		return err
	}
	if err := sink(rootKey(name), rootPtr{rootID: root.id, height: root.level}.encode()); err != nil {
		return err
	}
	return ctrSink(ctrKey(name), int64(nextID-1))
}

// linkLevel sets next pointers and high keys across a level; lows[i] is the
// lowest leaf key under level[i].
func linkLevel(level []*node, lows [][]byte) {
	for i := range level {
		if i+1 < len(level) {
			level[i].next = level[i+1].id
			level[i].highKey = lows[i+1]
		}
	}
}
