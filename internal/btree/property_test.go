package btree_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"tell/internal/btree"
	"tell/internal/env"
	"tell/internal/testutil"
)

// treeOp is one step of a generated operation log.
type treeOp struct {
	kind byte // 'i' insert, 'd' delete, 'u' update, 'l' lookup, 's' scan
	key  int
	val  int
}

func (o treeOp) String() string {
	switch o.kind {
	case 'i':
		return fmt.Sprintf("insert(%d,%d)", o.key, o.val)
	case 'd':
		return fmt.Sprintf("delete(%d)", o.key)
	case 'u':
		return fmt.Sprintf("update(%d,%d)", o.key, o.val)
	case 'l':
		return fmt.Sprintf("lookup(%d)", o.key)
	default:
		return "scan()"
	}
}

func opLogString(ops []treeOp) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// applyOps replays an operation log against a fresh tree and a model map,
// comparing results step by step and the full scan at the end. It returns a
// description of the first divergence, or "" when the tree matches the
// model throughout.
func applyOps(t *testing.T, ops []treeOp) string {
	t.Helper()
	h := newTreeHarness(t, 2)
	var failure string
	h.run(t, func(ctx env.Ctx) {
		if err := btree.Create(ctx, "prop", h.client); err != nil {
			failure = fmt.Sprintf("create: %v", err)
			return
		}
		tr := btree.New("prop", h.client)
		tr.MaxKeys = 4 // tiny fanout: a few dozen keys exercise splits and depth
		model := make(map[string][]byte)
		for i, o := range ops {
			k, v := key(o.key), val(o.val)
			switch o.kind {
			case 'i':
				existed, err := tr.Insert(ctx, k, v)
				if err != nil {
					failure = fmt.Sprintf("op %d %s: %v", i, o, err)
					return
				}
				_, inModel := model[string(k)]
				if existed != inModel {
					failure = fmt.Sprintf("op %d %s: existed=%v, model=%v", i, o, existed, inModel)
					return
				}
				if !existed {
					model[string(k)] = v
				}
			case 'd':
				removed, err := tr.Delete(ctx, k)
				if err != nil {
					failure = fmt.Sprintf("op %d %s: %v", i, o, err)
					return
				}
				_, inModel := model[string(k)]
				if removed != inModel {
					failure = fmt.Sprintf("op %d %s: removed=%v, model=%v", i, o, removed, inModel)
					return
				}
				delete(model, string(k))
			case 'u':
				updated, err := tr.Update(ctx, k, v)
				if err != nil {
					failure = fmt.Sprintf("op %d %s: %v", i, o, err)
					return
				}
				_, inModel := model[string(k)]
				if updated != inModel {
					failure = fmt.Sprintf("op %d %s: updated=%v, model=%v", i, o, updated, inModel)
					return
				}
				if updated {
					model[string(k)] = v
				}
			case 'l':
				got, found, err := tr.Lookup(ctx, k)
				if err != nil {
					failure = fmt.Sprintf("op %d %s: %v", i, o, err)
					return
				}
				want, inModel := model[string(k)]
				if found != inModel || (found && !bytes.Equal(got, want)) {
					failure = fmt.Sprintf("op %d %s: got (%q,%v), model (%q,%v)",
						i, o, got, found, want, inModel)
					return
				}
			case 's':
				if failure = scanMatchesModel(ctx, tr, model); failure != "" {
					failure = fmt.Sprintf("op %d %s: %s", i, o, failure)
					return
				}
			}
		}
		failure = scanMatchesModel(ctx, tr, model)
	})
	return failure
}

// scanMatchesModel compares a full scan with the sorted model content.
func scanMatchesModel(ctx env.Ctx, tr *btree.Tree, model map[string][]byte) string {
	want := make([]string, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)
	i := 0
	mismatch := ""
	err := tr.Scan(ctx, nil, nil, func(k, v []byte) bool {
		if i >= len(want) {
			mismatch = fmt.Sprintf("scan: extra key %q", k)
			return false
		}
		if string(k) != want[i] || !bytes.Equal(v, model[want[i]]) {
			mismatch = fmt.Sprintf("scan at %d: got (%q,%q), want (%q,%q)",
				i, k, v, want[i], model[want[i]])
			return false
		}
		i++
		return true
	})
	if err != nil {
		return fmt.Sprintf("scan: %v", err)
	}
	if mismatch != "" {
		return mismatch
	}
	if i != len(want) {
		return fmt.Sprintf("scan: %d keys, want %d", i, len(want))
	}
	return ""
}

// shrinkOps greedily removes chunks of a failing op log while the failure
// persists, ending with a (locally) minimal reproduction.
func shrinkOps(t *testing.T, ops []treeOp) []treeOp {
	t.Helper()
	for chunk := len(ops) / 2; chunk >= 1; chunk /= 2 {
		for at := 0; at+chunk <= len(ops); {
			cand := append(append([]treeOp{}, ops[:at]...), ops[at+chunk:]...)
			if applyOps(t, cand) != "" {
				ops = cand // still failing without this chunk: drop it
			} else {
				at += chunk
			}
		}
	}
	return ops
}

// TestTreePropertyVsModel drives random op logs against a model-map oracle.
// On failure it shrinks the log to a minimal reproduction and prints it with
// the seed (replay with TELL_SEED).
func TestTreePropertyVsModel(t *testing.T) {
	seed := testutil.Seed(t, 13)
	rng := rand.New(rand.NewSource(seed))
	const rounds = 5
	const opsPerRound = 300
	const keySpace = 60 // small enough that deletes hit live keys often
	for round := 0; round < rounds; round++ {
		ops := make([]treeOp, opsPerRound)
		for i := range ops {
			o := treeOp{key: rng.Intn(keySpace), val: rng.Intn(1000)}
			switch r := rng.Intn(10); {
			case r < 4:
				o.kind = 'i'
			case r < 6:
				o.kind = 'd'
			case r < 7:
				o.kind = 'u'
			case r < 9:
				o.kind = 'l'
			default:
				o.kind = 's'
			}
			ops[i] = o
		}
		if failure := applyOps(t, ops); failure != "" {
			min := shrinkOps(t, ops)
			t.Fatalf("round %d: %s\nminimal op log (%d of %d ops): %s",
				round, failure, len(min), len(ops), opLogString(min))
		}
	}
}
