// Package tpcc implements the TPC-C benchmark (§6.2): the nine-table
// schema, data population, all five transactions, and the three workload
// mixes the paper evaluates — the write-intensive standard mix, the
// read-intensive mix of Table 2, and the perfectly shardable variant of
// §6.4 (remote new-order and payment transactions replaced by local ones).
//
// As in the paper, terminals run without wait times and throughput is
// reported as TpmC (committed new-order transactions per minute) for the
// standard mix and Tps for the read-intensive mix.
package tpcc

import (
	"tell/internal/relational"
)

// Config sizes and parameterizes a TPC-C deployment.
type Config struct {
	// Warehouses is the scale factor W (paper default: 200; our
	// experiment defaults are smaller — a single host's memory replaces a
	// seven-server storage layer; see EXPERIMENTS.md).
	Warehouses int
	// Scale shrinks the per-warehouse row counts uniformly (1.0 = the
	// spec's 100k items / 3k customers per district). Contention behavior
	// is governed by Warehouses and districts, which are never scaled.
	Scale float64
	// Seed drives all data and input generation.
	Seed int64
}

func (c *Config) fill() {
	if c.Warehouses <= 0 {
		c.Warehouses = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Districts per warehouse (fixed by the spec; this is the contention axis).
const DistrictsPerWarehouse = 10

// Items returns the size of the item table.
func (c *Config) Items() int { return scaled(100000, c.Scale) }

// CustomersPerDistrict returns the customer count per district.
func (c *Config) CustomersPerDistrict() int { return scaled(3000, c.Scale) }

// OrdersPerDistrict returns the initially loaded order count per district.
func (c *Config) OrdersPerDistrict() int { return c.CustomersPerDistrict() }

func scaled(n int, s float64) int {
	v := int(float64(n) * s)
	if v < 10 {
		v = 10
	}
	return v
}

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TNewOrder  = "neworder"
	TOrders    = "orders"
	TOrderLine = "orderline"
	TItem      = "item"
	TStock     = "stock"
)

// Column positions, exported for readable transaction code.
//
// warehouse: w_id, w_name, w_tax, w_ytd
const (
	WID = iota
	WName
	WTax
	WYtd
)

// district: d_w_id, d_id, d_name, d_tax, d_ytd, d_next_o_id
const (
	DWID = iota
	DID
	DName
	DTax
	DYtd
	DNextOID
)

// customer: c_w_id, c_d_id, c_id, c_first, c_last, c_credit, c_discount,
// c_balance, c_ytd_payment, c_payment_cnt, c_delivery_cnt, c_data
const (
	CWID = iota
	CDID
	CID
	CFirst
	CLast
	CCredit
	CDiscount
	CBalance
	CYtdPayment
	CPaymentCnt
	CDeliveryCnt
	CData
)

// history: h_w_id, h_d_id, h_seq, h_c_id, h_c_w_id, h_c_d_id, h_date, h_amount
const (
	HWID = iota
	HDID
	HSeq
	HCID
	HCWID
	HCDID
	HDate
	HAmount
)

// neworder: no_w_id, no_d_id, no_o_id
const (
	NOWID = iota
	NODID
	NOOID
)

// orders: o_w_id, o_d_id, o_id, o_c_id, o_entry_d, o_carrier_id, o_ol_cnt, o_all_local
const (
	OWID = iota
	ODID
	OID
	OCID
	OEntryD
	OCarrierID
	OOlCnt
	OAllLocal
)

// orderline: ol_w_id, ol_d_id, ol_o_id, ol_number, ol_i_id, ol_supply_w_id,
// ol_delivery_d, ol_quantity, ol_amount
const (
	OLWID = iota
	OLDID
	OLOID
	OLNumber
	OLIID
	OLSupplyWID
	OLDeliveryD
	OLQuantity
	OLAmount
)

// item: i_id, i_name, i_price, i_data
const (
	IID = iota
	IName
	IPrice
	IData
)

// stock: s_w_id, s_i_id, s_quantity, s_ytd, s_order_cnt, s_remote_cnt, s_data
const (
	SWID = iota
	SIID
	SQuantity
	SYtd
	SOrderCnt
	SRemoteCnt
	SData
)

// Secondary index names.
const (
	IdxCustomerByLast = "bylast" // (c_w_id, c_d_id, c_last)
	IdxOrdersByCust   = "bycust" // (o_w_id, o_d_id, o_c_id, o_id)
)

// Schemas returns the nine TPC-C table schemas in load order.
func Schemas() []*relational.TableSchema {
	i64 := relational.TInt64
	f64 := relational.TFloat64
	str := relational.TString
	col := func(n string, t relational.ColType) relational.Column {
		return relational.Column{Name: n, Type: t}
	}
	return []*relational.TableSchema{
		{
			Name:   TWarehouse,
			Cols:   []relational.Column{col("w_id", i64), col("w_name", str), col("w_tax", f64), col("w_ytd", f64)},
			PKCols: []int{WID},
		},
		{
			Name: TDistrict,
			Cols: []relational.Column{
				col("d_w_id", i64), col("d_id", i64), col("d_name", str),
				col("d_tax", f64), col("d_ytd", f64), col("d_next_o_id", i64),
			},
			PKCols: []int{DWID, DID},
		},
		{
			Name: TCustomer,
			Cols: []relational.Column{
				col("c_w_id", i64), col("c_d_id", i64), col("c_id", i64),
				col("c_first", str), col("c_last", str), col("c_credit", str),
				col("c_discount", f64), col("c_balance", f64), col("c_ytd_payment", f64),
				col("c_payment_cnt", i64), col("c_delivery_cnt", i64), col("c_data", str),
			},
			PKCols: []int{CWID, CDID, CID},
			Indexes: []relational.IndexSchema{
				{Name: IdxCustomerByLast, Cols: []int{CWID, CDID, CLast}},
			},
		},
		{
			Name: THistory,
			Cols: []relational.Column{
				col("h_w_id", i64), col("h_d_id", i64), col("h_seq", i64),
				col("h_c_id", i64), col("h_c_w_id", i64), col("h_c_d_id", i64),
				col("h_date", i64), col("h_amount", f64),
			},
			PKCols: []int{HWID, HDID, HSeq},
		},
		{
			Name:   TNewOrder,
			Cols:   []relational.Column{col("no_w_id", i64), col("no_d_id", i64), col("no_o_id", i64)},
			PKCols: []int{NOWID, NODID, NOOID},
		},
		{
			Name: TOrders,
			Cols: []relational.Column{
				col("o_w_id", i64), col("o_d_id", i64), col("o_id", i64), col("o_c_id", i64),
				col("o_entry_d", i64), col("o_carrier_id", i64), col("o_ol_cnt", i64), col("o_all_local", i64),
			},
			PKCols: []int{OWID, ODID, OID},
			Indexes: []relational.IndexSchema{
				{Name: IdxOrdersByCust, Cols: []int{OWID, ODID, OCID, OID}},
			},
		},
		{
			Name: TOrderLine,
			Cols: []relational.Column{
				col("ol_w_id", i64), col("ol_d_id", i64), col("ol_o_id", i64), col("ol_number", i64),
				col("ol_i_id", i64), col("ol_supply_w_id", i64), col("ol_delivery_d", i64),
				col("ol_quantity", i64), col("ol_amount", f64),
			},
			PKCols: []int{OLWID, OLDID, OLOID, OLNumber},
		},
		{
			Name:   TItem,
			Cols:   []relational.Column{col("i_id", i64), col("i_name", str), col("i_price", f64), col("i_data", str)},
			PKCols: []int{IID},
		},
		{
			Name: TStock,
			Cols: []relational.Column{
				col("s_w_id", i64), col("s_i_id", i64), col("s_quantity", i64),
				col("s_ytd", i64), col("s_order_cnt", i64), col("s_remote_cnt", i64), col("s_data", str),
			},
			PKCols: []int{SWID, SIID},
		},
	}
}
