package tpcc

import (
	"fmt"
	"sort"

	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/relational"
)

// TellEngine runs TPC-C against one Tell processing node. Terminals homed
// on the same PN share it; calls are executed on the PN's synchronous
// worker pool (§6.1), so the PN's worker count caps its concurrency.
type TellEngine struct {
	pn     *core.PN
	tables map[string]*core.TableInfo
}

// NewTellEngine opens the TPC-C tables on the given PN. The dataset must
// already be loaded (Load).
func NewTellEngine(ctx env.Ctx, pn *core.PN) (*TellEngine, error) {
	e := &TellEngine{pn: pn, tables: make(map[string]*core.TableInfo)}
	for _, s := range Schemas() {
		t, err := pn.Catalog().OpenTable(ctx, s.Name)
		if err != nil {
			return nil, err
		}
		e.tables[s.Name] = t
	}
	return e, nil
}

// PN returns the underlying processing node.
func (e *TellEngine) PN() *core.PN { return e.pn }

// run executes fn as one transaction on a PN worker, translating conflicts
// into committed=false.
func (e *TellEngine) run(ctx env.Ctx, fn func(wctx env.Ctx, txn *core.Txn) error) (bool, error) {
	var committed bool
	var outErr error
	e.pn.Execute(ctx, func(wctx env.Ctx) {
		txn, err := e.pn.Begin(wctx)
		if err != nil {
			outErr = err
			return
		}
		if err := fn(wctx, txn); err != nil {
			if txn.State() == core.StateRunning {
				txn.Abort(wctx)
			}
			if err == core.ErrConflict || err == core.ErrDuplicateKey || err == errUserAbort {
				return // aborted, not an infrastructure failure
			}
			outErr = err
			return
		}
		switch err := txn.Commit(wctx); err {
		case nil:
			committed = true
		case core.ErrConflict, core.ErrDuplicateKey:
		default:
			outErr = err
		}
	})
	return committed, outErr
}

// errUserAbort marks intentional rollbacks (the 1% invalid-item new-orders).
var errUserAbort = fmt.Errorf("tpcc: intentional rollback")

func i64v(v int) relational.Value { return relational.I64(int64(v)) }

// NewOrder implements the new-order transaction (clause 2.4).
func (e *TellEngine) NewOrder(ctx env.Ctx, in *NewOrderInput) (bool, error) {
	wt, dt := e.tables[TWarehouse], e.tables[TDistrict]
	ct, it, st := e.tables[TCustomer], e.tables[TItem], e.tables[TStock]
	ot, not, olt := e.tables[TOrders], e.tables[TNewOrder], e.tables[TOrderLine]
	return e.run(ctx, func(wctx env.Ctx, txn *core.Txn) error {
		wctx.Work(e.pn.Costs().Logic)
		_, wRow, found, err := txn.LookupPK(wctx, wt, i64v(in.W))
		if err != nil || !found {
			return orNotFound(err, "warehouse")
		}
		wTax := wRow[WTax].F
		dRid, dRow, found, err := txn.LookupPK(wctx, dt, i64v(in.W), i64v(in.D))
		if err != nil || !found {
			return orNotFound(err, "district")
		}
		dTax := dRow[DTax].F
		oID := dRow[DNextOID].I
		dNew := cloneRow(dRow)
		dNew[DNextOID] = relational.I64(oID + 1)
		if _, err := txn.Update(wctx, dt, dRid, dNew); err != nil {
			return err
		}
		_, cRow, found, err := txn.LookupPK(wctx, ct, i64v(in.W), i64v(in.D), i64v(in.C))
		if err != nil || !found {
			return orNotFound(err, "customer")
		}
		discount := cRow[CDiscount].F

		allLocal := int64(1)
		if in.Remote {
			allLocal = 0
		}
		if _, err := txn.Insert(wctx, ot, relational.Row{
			i64v(in.W), i64v(in.D), relational.I64(oID), i64v(in.C),
			relational.I64(int64(wctx.Now())), relational.I64(0),
			relational.I64(int64(len(in.Items))), relational.I64(allLocal),
		}); err != nil {
			return err
		}
		if _, err := txn.Insert(wctx, not, relational.Row{
			i64v(in.W), i64v(in.D), relational.I64(oID),
		}); err != nil {
			return err
		}
		// Batched reads (§5.1): all item and stock rows travel in a
		// handful of requests instead of two round trips per line.
		itemKeys := make([][]relational.Value, len(in.Items))
		stockKeys := make([][]relational.Value, len(in.Items))
		for n, item := range in.Items {
			itemKeys[n] = []relational.Value{i64v(item.ItemID)}
			stockKeys[n] = []relational.Value{i64v(item.SupplyW), i64v(item.ItemID)}
		}
		_, itemRows, err := txn.ReadMany(wctx, it, itemKeys)
		if err != nil {
			return err
		}
		stockRids, stockRows, err := txn.ReadMany(wctx, st, stockKeys)
		if err != nil {
			return err
		}
		total := 0.0
		for n, item := range in.Items {
			if in.InvalidItem && n == len(in.Items)-1 {
				// Clause 2.4.2.3: unused item id → the whole
				// transaction rolls back.
				return errUserAbort
			}
			iRow := itemRows[n]
			if iRow == nil {
				return errUserAbort
			}
			price := iRow[IPrice].F
			sRid, sRow := stockRids[n], stockRows[n]
			if sRow == nil {
				return orNotFound(nil, "stock")
			}
			sNew := cloneRow(sRow)
			qty := sRow[SQuantity].I
			if qty >= int64(item.Quantity)+10 {
				qty -= int64(item.Quantity)
			} else {
				qty = qty - int64(item.Quantity) + 91
			}
			sNew[SQuantity] = relational.I64(qty)
			sNew[SYtd] = relational.I64(sRow[SYtd].I + int64(item.Quantity))
			sNew[SOrderCnt] = relational.I64(sRow[SOrderCnt].I + 1)
			if item.SupplyW != in.W {
				sNew[SRemoteCnt] = relational.I64(sRow[SRemoteCnt].I + 1)
			}
			if _, err := txn.Update(wctx, st, sRid, sNew); err != nil {
				return err
			}
			amount := float64(item.Quantity) * price * (1 + wTax + dTax) * (1 - discount)
			total += amount
			if _, err := txn.Insert(wctx, olt, relational.Row{
				i64v(in.W), i64v(in.D), relational.I64(oID), relational.I64(int64(n + 1)),
				i64v(item.ItemID), i64v(item.SupplyW), relational.I64(0),
				relational.I64(int64(item.Quantity)), relational.F64(amount),
			}); err != nil {
				return err
			}
		}
		_ = total
		return nil
	})
}

// Payment implements the payment transaction (clause 2.5).
func (e *TellEngine) Payment(ctx env.Ctx, in *PaymentInput) (bool, error) {
	wt, dt, ct, ht := e.tables[TWarehouse], e.tables[TDistrict], e.tables[TCustomer], e.tables[THistory]
	return e.run(ctx, func(wctx env.Ctx, txn *core.Txn) error {
		wctx.Work(e.pn.Costs().Logic)
		wRid, wRow, found, err := txn.LookupPK(wctx, wt, i64v(in.W))
		if err != nil || !found {
			return orNotFound(err, "warehouse")
		}
		wNew := cloneRow(wRow)
		wNew[WYtd] = relational.F64(wRow[WYtd].F + in.Amount)
		if _, err := txn.Update(wctx, wt, wRid, wNew); err != nil {
			return err
		}
		dRid, dRow, found, err := txn.LookupPK(wctx, dt, i64v(in.W), i64v(in.D))
		if err != nil || !found {
			return orNotFound(err, "district")
		}
		dNew := cloneRow(dRow)
		dNew[DYtd] = relational.F64(dRow[DYtd].F + in.Amount)
		if _, err := txn.Update(wctx, dt, dRid, dNew); err != nil {
			return err
		}
		cRid, cRow, err := e.selectCustomer(wctx, txn, in.CW, in.CD, in.ByLastName, in.CLast, in.C)
		if err != nil {
			return err
		}
		cNew := cloneRow(cRow)
		cNew[CBalance] = relational.F64(cRow[CBalance].F - in.Amount)
		cNew[CYtdPayment] = relational.F64(cRow[CYtdPayment].F + in.Amount)
		cNew[CPaymentCnt] = relational.I64(cRow[CPaymentCnt].I + 1)
		if cRow[CCredit].S == "BC" {
			// Bad credit: prepend payment info to c_data (truncated).
			data := fmt.Sprintf("%d,%d,%d,%d,%.2f|%s",
				cRow[CID].I, cRow[CDID].I, cRow[CWID].I, in.D, in.Amount, cRow[CData].S)
			if len(data) > 120 {
				data = data[:120]
			}
			cNew[CData] = relational.Str(data)
		}
		if _, err := txn.Update(wctx, ct, cRid, cNew); err != nil {
			return err
		}
		// History row; h_seq comes from the transaction id, which is
		// unique system-wide.
		_, err = txn.Insert(wctx, ht, relational.Row{
			i64v(in.W), i64v(in.D), relational.I64(int64(txn.TID())),
			relational.I64(cRow[CID].I), relational.I64(cRow[CWID].I), relational.I64(cRow[CDID].I),
			relational.I64(int64(wctx.Now())), relational.F64(in.Amount),
		})
		return err
	})
}

// selectCustomer resolves a customer by id or by last name (clause 2.5.2.2:
// by last name, pick the middle row ordered by c_first).
func (e *TellEngine) selectCustomer(wctx env.Ctx, txn *core.Txn, w, d int, byLast bool, last string, c int) (uint64, relational.Row, error) {
	ct := e.tables[TCustomer]
	if !byLast {
		rid, row, found, err := txn.LookupPK(wctx, ct, i64v(w), i64v(d), i64v(c))
		if err != nil || !found {
			return 0, nil, orNotFound(err, "customer")
		}
		return rid, row, nil
	}
	type match struct {
		rid uint64
		row relational.Row
	}
	var matches []match
	err := txn.ScanIndexPrefix(wctx, ct, IdxCustomerByLast,
		[]relational.Value{i64v(w), i64v(d), relational.Str(last)},
		func(en core.IndexEntry) bool {
			matches = append(matches, match{rid: en.Rid, row: en.Row})
			return true
		})
	if err != nil {
		return 0, nil, err
	}
	if len(matches) == 0 {
		return 0, nil, errUserAbort
	}
	sort.Slice(matches, func(i, j int) bool {
		return matches[i].row[CFirst].S < matches[j].row[CFirst].S
	})
	m := matches[len(matches)/2]
	return m.rid, m.row, nil
}

// OrderStatus implements the order-status transaction (clause 2.6).
func (e *TellEngine) OrderStatus(ctx env.Ctx, in *OrderStatusInput) (bool, error) {
	ot, olt := e.tables[TOrders], e.tables[TOrderLine]
	return e.run(ctx, func(wctx env.Ctx, txn *core.Txn) error {
		wctx.Work(e.pn.Costs().Logic)
		_, cRow, err := e.selectCustomer(wctx, txn, in.W, in.D, in.ByLastName, in.CLast, in.C)
		if err != nil {
			return err
		}
		cID := cRow[CID].I
		// Most recent order of the customer via the (w, d, c, o) index.
		var lastOrder relational.Row
		err = txn.ScanIndexPrefix(wctx, ot, IdxOrdersByCust,
			[]relational.Value{i64v(in.W), i64v(in.D), relational.I64(cID)},
			func(en core.IndexEntry) bool {
				lastOrder = en.Row // ascending o_id: the last one wins
				return true
			})
		if err != nil {
			return err
		}
		if lastOrder == nil {
			return nil // customer without orders: legal, empty status
		}
		oID := lastOrder[OID].I
		// Read the order lines.
		n := 0
		err = txn.ScanPK(wctx, olt,
			[]relational.Value{i64v(in.W), i64v(in.D), relational.I64(oID)},
			[]relational.Value{i64v(in.W), i64v(in.D), relational.I64(oID + 1)},
			func(en core.IndexEntry) bool {
				n++
				return true
			})
		return err
	})
}

// Delivery implements the delivery transaction (clause 2.7): for each of
// the ten districts, the oldest undelivered order is delivered.
func (e *TellEngine) Delivery(ctx env.Ctx, in *DeliveryInput) (bool, error) {
	not, ot, olt, ct := e.tables[TNewOrder], e.tables[TOrders], e.tables[TOrderLine], e.tables[TCustomer]
	return e.run(ctx, func(wctx env.Ctx, txn *core.Txn) error {
		wctx.Work(e.pn.Costs().Logic)
		for d := 1; d <= DistrictsPerWarehouse; d++ {
			// Oldest new-order of the district: first PK entry in range.
			var noRid uint64
			var oID int64 = -1
			err := txn.ScanPK(wctx, not,
				[]relational.Value{i64v(in.W), i64v(d)},
				[]relational.Value{i64v(in.W), i64v(d + 1)},
				func(en core.IndexEntry) bool {
					noRid = en.Rid
					oID = en.Row[NOOID].I
					return false // only the first (lowest o_id)
				})
			if err != nil {
				return err
			}
			if oID < 0 {
				continue // no undelivered order in this district
			}
			if _, err := txn.Delete(wctx, not, noRid); err != nil {
				return err
			}
			oRid, oRow, found, err := txn.LookupPK(wctx, ot, i64v(in.W), i64v(d), relational.I64(oID))
			if err != nil || !found {
				return orNotFound(err, "order")
			}
			oNew := cloneRow(oRow)
			oNew[OCarrierID] = relational.I64(int64(in.Carrier))
			if _, err := txn.Update(wctx, ot, oRid, oNew); err != nil {
				return err
			}
			total := 0.0
			type olUpd struct {
				rid uint64
				row relational.Row
			}
			var upds []olUpd
			err = txn.ScanPK(wctx, olt,
				[]relational.Value{i64v(in.W), i64v(d), relational.I64(oID)},
				[]relational.Value{i64v(in.W), i64v(d), relational.I64(oID + 1)},
				func(en core.IndexEntry) bool {
					total += en.Row[OLAmount].F
					upds = append(upds, olUpd{rid: en.Rid, row: en.Row})
					return true
				})
			if err != nil {
				return err
			}
			for _, u := range upds {
				nr := cloneRow(u.row)
				nr[OLDeliveryD] = relational.I64(int64(wctx.Now()) | 1)
				if _, err := txn.Update(wctx, olt, u.rid, nr); err != nil {
					return err
				}
			}
			cRid, cRow, found, err := txn.LookupPK(wctx, ct, i64v(in.W), i64v(d), relational.I64(oRow[OCID].I))
			if err != nil || !found {
				return orNotFound(err, "customer")
			}
			cNew := cloneRow(cRow)
			cNew[CBalance] = relational.F64(cRow[CBalance].F + total)
			cNew[CDeliveryCnt] = relational.I64(cRow[CDeliveryCnt].I + 1)
			if _, err := txn.Update(wctx, ct, cRid, cNew); err != nil {
				return err
			}
		}
		return nil
	})
}

// StockLevel implements the stock-level transaction (clause 2.8): count
// distinct items of the district's last 20 orders whose stock is below the
// threshold.
func (e *TellEngine) StockLevel(ctx env.Ctx, in *StockLevelInput) (bool, error) {
	dt, olt, st := e.tables[TDistrict], e.tables[TOrderLine], e.tables[TStock]
	return e.run(ctx, func(wctx env.Ctx, txn *core.Txn) error {
		wctx.Work(e.pn.Costs().Logic)
		_, dRow, found, err := txn.LookupPK(wctx, dt, i64v(in.W), i64v(in.D))
		if err != nil || !found {
			return orNotFound(err, "district")
		}
		next := dRow[DNextOID].I
		lo := next - 20
		if lo < 1 {
			lo = 1
		}
		seen := make(map[int64]bool)
		var items []int64
		err = txn.ScanPK(wctx, olt,
			[]relational.Value{i64v(in.W), i64v(in.D), relational.I64(lo)},
			[]relational.Value{i64v(in.W), i64v(in.D), relational.I64(next)},
			func(en core.IndexEntry) bool {
				id := en.Row[OLIID].I
				if !seen[id] {
					seen[id] = true
					items = append(items, id)
				}
				return true
			})
		if err != nil {
			return err
		}
		stockKeys := make([][]relational.Value, len(items))
		for i, item := range items {
			stockKeys[i] = []relational.Value{i64v(in.W), relational.I64(item)}
		}
		_, stockRows, err := txn.ReadMany(wctx, st, stockKeys)
		if err != nil {
			return err
		}
		low := 0
		for _, sRow := range stockRows {
			if sRow != nil && sRow[SQuantity].I < int64(in.Threshold) {
				low++
			}
		}
		return nil
	})
}

// cloneRow copies a row before mutation.
func cloneRow(r relational.Row) relational.Row {
	return append(relational.Row(nil), r...)
}

// orNotFound turns a missing required row into an error, passing real
// errors through.
func orNotFound(err error, what string) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("tpcc: required %s row missing", what)
}
