package tpcc_test

import (
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/testutil"
	"tell/internal/tpcc"
)

// fakeEngine commits everything after a fixed virtual delay, except
// new-orders flagged invalid.
type fakeEngine struct {
	delay time.Duration
	calls [5]int
}

func (f *fakeEngine) NewOrder(ctx env.Ctx, in *tpcc.NewOrderInput) (bool, error) {
	f.calls[tpcc.TxNewOrder]++
	ctx.Sleep(f.delay)
	return !in.InvalidItem, nil
}
func (f *fakeEngine) Payment(ctx env.Ctx, in *tpcc.PaymentInput) (bool, error) {
	f.calls[tpcc.TxPayment]++
	ctx.Sleep(f.delay)
	return true, nil
}
func (f *fakeEngine) OrderStatus(ctx env.Ctx, in *tpcc.OrderStatusInput) (bool, error) {
	f.calls[tpcc.TxOrderStatus]++
	ctx.Sleep(f.delay)
	return true, nil
}
func (f *fakeEngine) Delivery(ctx env.Ctx, in *tpcc.DeliveryInput) (bool, error) {
	f.calls[tpcc.TxDelivery]++
	ctx.Sleep(f.delay)
	return true, nil
}
func (f *fakeEngine) StockLevel(ctx env.Ctx, in *tpcc.StockLevelInput) (bool, error) {
	f.calls[tpcc.TxStockLevel]++
	ctx.Sleep(f.delay)
	return true, nil
}

func TestDriverAccounting(t *testing.T) {
	k := sim.NewKernel(testutil.Seed(t, 5))
	envr := env.NewSim(k)
	node := envr.NewNode("driver", 4)
	eng := &fakeEngine{delay: time.Millisecond}
	cfg := tpcc.Config{Warehouses: 4, Scale: 0.02, Seed: 1}
	drv := tpcc.NewDriver(cfg, tpcc.StandardMix(), []tpcc.Engine{eng}, 8, 3)
	var res *tpcc.Result
	node.Go("run", func(ctx env.Ctx) {
		defer k.Stop()
		res = drv.Run(ctx, envr, node, 50, 500)
	})
	if err := k.RunUntil(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if res == nil {
		t.Fatal("driver did not finish")
	}
	// Exactly `measure` transactions counted after warm-up.
	if got := res.TotalCommitted() + res.TotalAborted(); got != 500 {
		t.Fatalf("measured %d, want 500", got)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	// 8 terminals × 1ms per tx ⇒ throughput ≈ 8000 tx/s of virtual time.
	tps := res.Tps()
	if tps < 6000 || tps > 8800 {
		t.Fatalf("Tps = %v, want ≈8000", tps)
	}
	// The only aborts are the ~1% invalid-item new-orders.
	if res.TotalAborted() > 25 {
		t.Fatalf("aborted = %d", res.TotalAborted())
	}
	// Mix respected (rough proportions).
	no := float64(res.Committed[tpcc.TxNewOrder]+res.Aborted[tpcc.TxNewOrder]) / 500
	if no < 0.35 || no > 0.55 {
		t.Fatalf("new-order fraction %.2f", no)
	}
	// Latency histogram captured per type with ≈1ms means.
	h := res.Latency.Get("new-order")
	if h == nil || h.Mean() < 900*time.Microsecond || h.Mean() > 1200*time.Microsecond {
		t.Fatalf("new-order latency: %v", h)
	}
	// Warm-up + measured equals everything the engine saw.
	total := 0
	for _, c := range eng.calls {
		total += c
	}
	if total < 550 {
		t.Fatalf("engine saw %d calls, want ≥ 550 (warmup + measure)", total)
	}
}

func TestDriverStopsAllTerminals(t *testing.T) {
	k := sim.NewKernel(testutil.Seed(t, 5))
	envr := env.NewSim(k)
	node := envr.NewNode("driver", 4)
	eng := &fakeEngine{delay: 100 * time.Microsecond}
	cfg := tpcc.Config{Warehouses: 2, Scale: 0.02, Seed: 1}
	drv := tpcc.NewDriver(cfg, tpcc.ReadIntensiveMix(), []tpcc.Engine{eng}, 16, 3)
	done := false
	node.Go("run", func(ctx env.Ctx) {
		drv.Run(ctx, envr, node, 0, 200)
		done = true
		k.Stop()
	})
	if err := k.RunUntil(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("driver hung")
	}
	// After Run returns, terminals have exited; kernel can drain.
	k.Shutdown()
}
