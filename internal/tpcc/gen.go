package tpcc

import (
	"fmt"
	"math/rand"
	"strings"
)

// NURand constants (TPC-C clause 2.1.6). The C values are fixed per run.
const (
	cLast = 123
	cID   = 77
	cOLI  = 5525
)

// nuRand is the non-uniform random function NURand(A, x, y) of the spec.
func nuRand(rng *rand.Rand, a, c, x, y int) int {
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

// NURandCustomerID picks a customer id in [1, max] with TPC-C skew.
func NURandCustomerID(rng *rand.Rand, max int) int {
	if max < 1023 {
		// With scaled-down customer counts, shrink A proportionally so
		// the skew shape survives.
		return nuRand(rng, nextPow2(max/3), cID%max1(max), 1, max)
	}
	return nuRand(rng, 1023, cID, 1, max)
}

// NURandItemID picks an item id in [1, max] with TPC-C skew.
func NURandItemID(rng *rand.Rand, max int) int {
	if max < 8191 {
		return nuRand(rng, nextPow2(max/3), cOLI%max1(max), 1, max)
	}
	return nuRand(rng, 8191, cOLI, 1, max)
}

// NURandLastNameIdx picks a last-name syllable index with TPC-C skew.
func NURandLastNameIdx(rng *rand.Rand, max int) int {
	return nuRand(rng, 255, cLast, 0, max-1)
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	if p < 1 {
		p = 1
	}
	return p
}

// lastNameSyllables per TPC-C clause 4.3.2.3.
var lastNameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName builds the spec's syllable-concatenated last name for number n
// (0..999).
func LastName(n int) string {
	return lastNameSyllables[n/100] + lastNameSyllables[(n/10)%10] + lastNameSyllables[n%10]
}

// randLastNameLoaded picks a loaded last name number: customers are loaded
// with last names derived from (c_id-1) mod 1000 for the first 1000, then
// NURand for the rest; for lookups the spec uses NURand(255,0,999).
func randLastNameNumber(rng *rand.Rand) int {
	return NURandLastNameIdx(rng, 1000)
}

// randAlnum produces a random alphanumeric string in [lo, hi] characters.
// The spec pads rows with sizeable a-strings; we keep them short to trade
// memory for warehouse count (documented in EXPERIMENTS.md).
func randAlnum(rng *rand.Rand, lo, hi int) string {
	const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	n := lo + rng.Intn(hi-lo+1)
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		sb.WriteByte(chars[rng.Intn(len(chars))])
	}
	return sb.String()
}

// originalMark is embedded in 10% of i_data/s_data strings (clause 4.3.3.1).
const originalMark = "ORIGINAL"

func randData(rng *rand.Rand) string {
	s := randAlnum(rng, 12, 24)
	if rng.Intn(10) == 0 {
		pos := rng.Intn(len(s) - 7)
		s = s[:pos] + originalMark + s[pos+8:]
	}
	return s
}

// wName deterministically names a warehouse.
func wName(w int) string { return fmt.Sprintf("WH%04d", w) }
