package tpcc

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tell/internal/env"
	"tell/internal/metrics"
	"tell/internal/obs"
	"tell/internal/trace"
)

// Result is the outcome of one benchmark run.
type Result struct {
	Mix       string
	Elapsed   time.Duration // measurement window (virtual time under sim)
	Committed [numTxTypes]uint64
	Aborted   [numTxTypes]uint64
	Latency   *metrics.Summary
}

// TpmC is the paper's headline metric: committed new-order transactions per
// minute (§6.2).
func (r *Result) TpmC() float64 {
	return metrics.PerMinute(r.Committed[TxNewOrder], r.Elapsed)
}

// Tps is total committed transactions per second (the read-intensive mix's
// metric).
func (r *Result) Tps() float64 {
	return metrics.PerSecond(r.TotalCommitted(), r.Elapsed)
}

// TotalCommitted sums commits across types.
func (r *Result) TotalCommitted() uint64 {
	var t uint64
	for _, c := range r.Committed {
		t += c
	}
	return t
}

// TotalAborted sums aborts across types.
func (r *Result) TotalAborted() uint64 {
	var t uint64
	for _, c := range r.Aborted {
		t += c
	}
	return t
}

// AbortRate is aborted / issued across all transaction types (the paper's
// "overall transaction abort rate").
func (r *Result) AbortRate() float64 {
	total := r.TotalCommitted() + r.TotalAborted()
	if total == 0 {
		return 0
	}
	return float64(r.TotalAborted()) / float64(total)
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("%s: TpmC=%.0f Tps=%.0f aborts=%.2f%% latency[%s]",
		r.Mix, r.TpmC(), r.Tps(), 100*r.AbortRate(), r.Latency.Total())
}

// Driver owns a set of closed-loop terminals issuing transactions against
// the engines. Terminals send continuously without wait times (§6.2) and do
// not retry failed transactions (failed transactions are simply not counted,
// matching the paper's TpmC accounting).
type Driver struct {
	cfg       Config
	mix       Mix
	engines   []Engine
	terminals int
	seed      int64

	// Obs, if set, receives every finished transaction (class = tx type)
	// for windowed SLO tracking and tail-based flight recording. All hooks
	// are nil-safe, so leaving it unset costs nothing.
	Obs *obs.Pipeline

	mu        sync.Mutex
	started   bool
	startAt   time.Duration
	warmLeft  int
	measLeft  int
	stop      bool
	result    *Result
	liveTerms int
	done      env.Future
}

// NewDriver creates a driver with the given terminal count spread
// round-robin over the engines.
func NewDriver(cfg Config, mix Mix, engines []Engine, terminals int, seed int64) *Driver {
	cfg.fill()
	if terminals <= 0 {
		terminals = 8
	}
	return &Driver{
		cfg:       cfg,
		mix:       mix,
		engines:   engines,
		terminals: terminals,
		seed:      seed,
		result:    &Result{Mix: mix.Name, Latency: metrics.NewSummary()},
	}
}

// Run spawns the terminals on node and blocks until `measure` transactions
// have finished after a warm-up of `warmup` transactions. It must be called
// from an activity on the environment the engines run in.
func (d *Driver) Run(ctx env.Ctx, envr env.Full, node env.Node, warmup, measure int) *Result {
	d.mu.Lock()
	d.warmLeft = warmup
	d.measLeft = measure
	d.liveTerms = d.terminals
	d.done = envr.NewFuture()
	d.mu.Unlock()
	for i := 0; i < d.terminals; i++ {
		i := i
		node.Go(fmt.Sprintf("terminal%d", i), func(tctx env.Ctx) {
			d.terminal(tctx, i)
		})
	}
	d.done.Get(ctx)
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.result
}

// terminal is one closed loop: generate input, issue, record, repeat.
func (d *Driver) terminal(ctx env.Ctx, id int) {
	w := (id % d.cfg.Warehouses) + 1
	dd := (id / d.cfg.Warehouses % DistrictsPerWarehouse) + 1
	rng := rand.New(rand.NewSource(d.seed + int64(id)*7919))
	gen := NewInputGen(d.cfg, d.mix, w, dd, rng)
	engine := d.engines[id%len(d.engines)]

	for {
		d.mu.Lock()
		stop := d.stop
		d.mu.Unlock()
		if stop {
			break
		}
		txType, input := gen.Next()
		sc := ctx.Trace()
		if sc.R.Enabled() {
			// Root the transaction's trace: a fresh top-level span on the
			// terminal node, plus the aggregator every layer below charges
			// latency components into.
			sc.Span = sc.R.NewID()
			sc.Agg = trace.NewTxnAgg()
		}
		begin := ctx.Now()
		committed, err := d.issue(ctx, engine, txType, input)
		elapsed := ctx.Now() - begin
		root := sc.Span
		if sc.R.Enabled() {
			var c int64
			if committed {
				c = 1
			}
			sc.R.Span(sc.Span, 0, ctx.Node().Name(), txType.String(), begin, int64(id), c)
			sc.R.RecordTxn(txType.String(), committed, elapsed, sc.Agg)
			sc.Span, sc.Agg = 0, nil
		}
		// Telemetry after the root span closes, so a flight capture sees the
		// complete span tree in the recorder's ring.
		d.Obs.ObserveTxn(begin, txType.String(), root, elapsed, committed)
		if err != nil {
			// Infrastructure failure: stop this terminal; the run can
			// still complete on the others.
			break
		}
		d.record(ctx, txType, committed, elapsed)
	}
	d.mu.Lock()
	d.liveTerms--
	last := d.liveTerms == 0
	d.mu.Unlock()
	if last {
		d.done.Set(nil)
	}
}

func (d *Driver) issue(ctx env.Ctx, e Engine, t TxType, input any) (bool, error) {
	switch t {
	case TxNewOrder:
		return e.NewOrder(ctx, input.(*NewOrderInput))
	case TxPayment:
		return e.Payment(ctx, input.(*PaymentInput))
	case TxOrderStatus:
		return e.OrderStatus(ctx, input.(*OrderStatusInput))
	case TxDelivery:
		return e.Delivery(ctx, input.(*DeliveryInput))
	default:
		return e.StockLevel(ctx, input.(*StockLevelInput))
	}
}

// record accounts one finished transaction, handling the warm-up window and
// the measurement end.
func (d *Driver) record(ctx env.Ctx, t TxType, committed bool, latency time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop {
		return
	}
	if d.warmLeft > 0 {
		d.warmLeft--
		if d.warmLeft == 0 {
			d.started = true
			d.startAt = ctx.Now()
		}
		return
	}
	if !d.started {
		d.started = true
		d.startAt = ctx.Now()
	}
	if committed {
		d.result.Committed[t]++
		d.result.Latency.Record(t.String(), latency)
	} else {
		d.result.Aborted[t]++
	}
	d.measLeft--
	if d.measLeft <= 0 {
		d.result.Elapsed = ctx.Now() - d.startAt
		d.stop = true
	}
}
