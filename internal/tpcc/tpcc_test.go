package tpcc_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/relational"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/testutil"
	"tell/internal/tpcc"
	"tell/internal/transport"
)

// rig is a full Tell stack with a loaded TPC-C dataset.
type rig struct {
	k       *sim.Kernel
	envr    env.Full
	net     *transport.SimNet
	cluster *store.Cluster
	pns     []*core.PN
	driver  env.Node
	loaded  *tpcc.Loaded
	cfg     tpcc.Config
}

func newRig(t *testing.T, nPNs int, cfg tpcc.Config) *rig {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 77))
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cl, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := tpcc.Load(cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cmNode := envr.NewNode("cm0", 2)
	cm := commitmgr.New("cm0", "cm0", envr, cmNode, net, cl.NewClient(cmNode))
	if err := cm.Start(); err != nil {
		t.Fatal(err)
	}
	r := &rig{k: k, envr: envr, net: net, cluster: cl, loaded: loaded, cfg: loaded.Config}
	for i := 0; i < nPNs; i++ {
		name := fmt.Sprintf("pn%d", i)
		node := envr.NewNode(name, 4)
		pn := core.New(core.Config{ID: name, Workers: 8}, envr, node, net,
			cl.NewClient(node), commitmgr.NewClient(envr, node, net, []string{"cm0"}))
		pn.StartWorkers()
		r.pns = append(r.pns, pn)
	}
	r.driver = envr.NewNode("terminals", 4)
	return r
}

func (r *rig) run(t *testing.T, fn func(ctx env.Ctx)) {
	t.Helper()
	done := false
	r.driver.Go("test", func(ctx env.Ctx) {
		defer r.k.Stop()
		fn(ctx)
		done = true
	})
	if err := r.k.RunUntil(sim.Time(30000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("test activity did not finish")
	}
	r.k.Shutdown()
}

func smallCfg() tpcc.Config {
	return tpcc.Config{Warehouses: 2, Scale: 0.02, Seed: 7} // 2000 items, 60 cust/district
}

func TestLoadShapes(t *testing.T) {
	cfg := smallCfg()
	r := newRig(t, 1, cfg)
	if r.loaded.Rows == 0 {
		t.Fatal("nothing loaded")
	}
	r.run(t, func(ctx env.Ctx) {
		pn := r.pns[0]
		eng, err := tpcc.NewTellEngine(ctx, pn)
		if err != nil {
			t.Fatal(err)
		}
		_ = eng
		// Verify district rows exist with the right next_o_id.
		dist, _ := pn.Catalog().OpenTable(ctx, tpcc.TDistrict)
		txn, _ := pn.Begin(ctx)
		nOrd := cfg.OrdersPerDistrict()
		for w := 1; w <= cfg.Warehouses; w++ {
			for d := 1; d <= tpcc.DistrictsPerWarehouse; d++ {
				_, row, found, err := txn.LookupPK(ctx, dist,
					relational.I64(int64(w)), relational.I64(int64(d)))
				if err != nil || !found {
					t.Fatalf("district %d/%d: %v %v", w, d, found, err)
				}
				if row[tpcc.DNextOID].I != int64(nOrd+1) {
					t.Fatalf("district %d/%d next_o_id = %d, want %d",
						w, d, row[tpcc.DNextOID].I, nOrd+1)
				}
			}
		}
		// Count customers of one district via the PK index.
		cust, _ := pn.Catalog().OpenTable(ctx, tpcc.TCustomer)
		n := 0
		txn.ScanPK(ctx, cust,
			[]relational.Value{relational.I64(1), relational.I64(1)},
			[]relational.Value{relational.I64(1), relational.I64(2)},
			func(e core.IndexEntry) bool { n++; return true })
		if n != cfg.CustomersPerDistrict() {
			t.Fatalf("district has %d customers, want %d", n, cfg.CustomersPerDistrict())
		}
		txn.Commit(ctx)
	})
}

func TestNewOrderAdvancesDistrictAndCreatesRows(t *testing.T) {
	cfg := smallCfg()
	r := newRig(t, 1, cfg)
	r.run(t, func(ctx env.Ctx) {
		pn := r.pns[0]
		eng, _ := tpcc.NewTellEngine(ctx, pn)
		in := &tpcc.NewOrderInput{
			W: 1, D: 1, C: 1,
			Items: []tpcc.OrderItem{{ItemID: 1, SupplyW: 1, Quantity: 3}, {ItemID: 2, SupplyW: 1, Quantity: 1}},
		}
		ok, err := eng.NewOrder(ctx, in)
		if err != nil || !ok {
			t.Fatalf("neworder: %v %v", ok, err)
		}
		// The district sequence advanced and the order rows exist.
		dist, _ := pn.Catalog().OpenTable(ctx, tpcc.TDistrict)
		ords, _ := pn.Catalog().OpenTable(ctx, tpcc.TOrders)
		ol, _ := pn.Catalog().OpenTable(ctx, tpcc.TOrderLine)
		txn, _ := pn.Begin(ctx)
		_, dRow, _, _ := txn.LookupPK(ctx, dist, relational.I64(1), relational.I64(1))
		oID := dRow[tpcc.DNextOID].I - 1
		if oID != int64(cfg.OrdersPerDistrict()+1) {
			t.Fatalf("new order id = %d", oID)
		}
		_, oRow, found, _ := txn.LookupPK(ctx, ords, relational.I64(1), relational.I64(1), relational.I64(oID))
		if !found || oRow[tpcc.OOlCnt].I != 2 {
			t.Fatalf("order row: %v %v", oRow, found)
		}
		lines := 0
		txn.ScanPK(ctx, ol,
			[]relational.Value{relational.I64(1), relational.I64(1), relational.I64(oID)},
			[]relational.Value{relational.I64(1), relational.I64(1), relational.I64(oID + 1)},
			func(e core.IndexEntry) bool { lines++; return true })
		if lines != 2 {
			t.Fatalf("order lines = %d", lines)
		}
		txn.Commit(ctx)
	})
}

func TestInvalidItemRollsBack(t *testing.T) {
	cfg := smallCfg()
	r := newRig(t, 1, cfg)
	r.run(t, func(ctx env.Ctx) {
		pn := r.pns[0]
		eng, _ := tpcc.NewTellEngine(ctx, pn)
		in := &tpcc.NewOrderInput{
			W: 1, D: 2, C: 1, InvalidItem: true,
			Items: []tpcc.OrderItem{{ItemID: 1, SupplyW: 1, Quantity: 1}, {ItemID: 2, SupplyW: 1, Quantity: 1}},
		}
		ok, err := eng.NewOrder(ctx, in)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("invalid-item order committed")
		}
		// Nothing changed: district sequence intact.
		dist, _ := pn.Catalog().OpenTable(ctx, tpcc.TDistrict)
		txn, _ := pn.Begin(ctx)
		_, dRow, _, _ := txn.LookupPK(ctx, dist, relational.I64(1), relational.I64(2))
		if dRow[tpcc.DNextOID].I != int64(cfg.OrdersPerDistrict()+1) {
			t.Fatalf("district sequence leaked: %d", dRow[tpcc.DNextOID].I)
		}
		txn.Commit(ctx)
	})
}

func TestPaymentByLastName(t *testing.T) {
	cfg := smallCfg()
	r := newRig(t, 1, cfg)
	r.run(t, func(ctx env.Ctx) {
		eng, _ := tpcc.NewTellEngine(ctx, r.pns[0])
		in := &tpcc.PaymentInput{
			W: 1, D: 1, CW: 1, CD: 1,
			ByLastName: true, CLast: tpcc.LastName(0), // "BARBARBAR", loaded for c_id 1
			Amount: 42.5,
		}
		ok, err := eng.Payment(ctx, in)
		if err != nil || !ok {
			t.Fatalf("payment: %v %v", ok, err)
		}
		// Warehouse ytd moved.
		wt, _ := r.pns[0].Catalog().OpenTable(ctx, tpcc.TWarehouse)
		txn, _ := r.pns[0].Begin(ctx)
		_, wRow, _, _ := txn.LookupPK(ctx, wt, relational.I64(1))
		if wRow[tpcc.WYtd].F != 300042.5 {
			t.Fatalf("w_ytd = %v", wRow[tpcc.WYtd].F)
		}
		txn.Commit(ctx)
	})
}

func TestDeliveryConsumesOldestNewOrders(t *testing.T) {
	cfg := smallCfg()
	r := newRig(t, 1, cfg)
	r.run(t, func(ctx env.Ctx) {
		pn := r.pns[0]
		eng, _ := tpcc.NewTellEngine(ctx, pn)
		// Count new-order rows in district 1 before.
		not, _ := pn.Catalog().OpenTable(ctx, tpcc.TNewOrder)
		count := func() int {
			txn, _ := pn.Begin(ctx)
			defer txn.Commit(ctx)
			n := 0
			txn.ScanPK(ctx, not,
				[]relational.Value{relational.I64(1), relational.I64(1)},
				[]relational.Value{relational.I64(1), relational.I64(2)},
				func(e core.IndexEntry) bool { n++; return true })
			return n
		}
		before := count()
		if before == 0 {
			t.Fatal("no undelivered orders loaded")
		}
		ok, err := eng.Delivery(ctx, &tpcc.DeliveryInput{W: 1, Carrier: 3})
		if err != nil || !ok {
			t.Fatalf("delivery: %v %v", ok, err)
		}
		if got := count(); got != before-1 {
			t.Fatalf("new-order rows: %d -> %d, want -1", before, got)
		}
	})
}

func TestOrderStatusAndStockLevel(t *testing.T) {
	cfg := smallCfg()
	r := newRig(t, 1, cfg)
	r.run(t, func(ctx env.Ctx) {
		eng, _ := tpcc.NewTellEngine(ctx, r.pns[0])
		ok, err := eng.OrderStatus(ctx, &tpcc.OrderStatusInput{W: 1, D: 1, C: 5})
		if err != nil || !ok {
			t.Fatalf("orderstatus: %v %v", ok, err)
		}
		ok, err = eng.StockLevel(ctx, &tpcc.StockLevelInput{W: 1, D: 1, Threshold: 15})
		if err != nil || !ok {
			t.Fatalf("stocklevel: %v %v", ok, err)
		}
	})
}

// TestStandardMixEndToEnd drives the full benchmark and then checks TPC-C
// consistency conditions.
func TestStandardMixEndToEnd(t *testing.T) {
	// 8 warehouses for 16 terminals: ~0.2 concurrent transactions per
	// district, a deliberately contended configuration (§6.3.1 shows
	// contention raises aborts; the paper ran 200 warehouses).
	cfg := tpcc.Config{Warehouses: 8, Scale: 0.02, Seed: 7}
	r := newRig(t, 2, cfg)
	r.run(t, func(ctx env.Ctx) {
		var engines []tpcc.Engine
		for _, pn := range r.pns {
			eng, err := tpcc.NewTellEngine(ctx, pn)
			if err != nil {
				t.Fatal(err)
			}
			engines = append(engines, eng)
		}
		drv := tpcc.NewDriver(cfg, tpcc.StandardMix(), engines, 16, 5)
		res := drv.Run(ctx, r.envr, r.driver, 20, 300)
		if res.TotalCommitted() == 0 {
			t.Fatal("nothing committed")
		}
		if res.Committed[tpcc.TxNewOrder] == 0 {
			t.Fatal("no new-orders committed")
		}
		if res.TpmC() <= 0 {
			t.Fatalf("TpmC = %v", res.TpmC())
		}
		if res.AbortRate() > 0.5 {
			t.Fatalf("abort rate %.2f implausibly high", res.AbortRate())
		}
		t.Logf("result: %v", res)

		// TPC-C consistency condition 1&3 (clause 3.3.2): for every
		// district, d_next_o_id - 1 equals the max o_id and max no_o_id.
		pn := r.pns[0]
		dist, _ := pn.Catalog().OpenTable(ctx, tpcc.TDistrict)
		ords, _ := pn.Catalog().OpenTable(ctx, tpcc.TOrders)
		txn, _ := pn.Begin(ctx)
		for w := 1; w <= cfg.Warehouses; w++ {
			for d := 1; d <= tpcc.DistrictsPerWarehouse; d++ {
				_, dRow, _, _ := txn.LookupPK(ctx, dist, relational.I64(int64(w)), relational.I64(int64(d)))
				var maxO int64
				txn.ScanPK(ctx, ords,
					[]relational.Value{relational.I64(int64(w)), relational.I64(int64(d))},
					[]relational.Value{relational.I64(int64(w)), relational.I64(int64(d + 1))},
					func(e core.IndexEntry) bool {
						if e.Row[tpcc.OID].I > maxO {
							maxO = e.Row[tpcc.OID].I
						}
						return true
					})
				if dRow[tpcc.DNextOID].I != maxO+1 {
					t.Fatalf("w%d d%d: next_o_id=%d max(o_id)=%d",
						w, d, dRow[tpcc.DNextOID].I, maxO)
				}
			}
		}
		txn.Commit(ctx)
	})
}

func TestReadIntensiveMixMostlyReads(t *testing.T) {
	cfg := smallCfg()
	r := newRig(t, 1, cfg)
	r.run(t, func(ctx env.Ctx) {
		eng, _ := tpcc.NewTellEngine(ctx, r.pns[0])
		drv := tpcc.NewDriver(cfg, tpcc.ReadIntensiveMix(), []tpcc.Engine{eng}, 8, 5)
		res := drv.Run(ctx, r.envr, r.driver, 10, 200)
		if res.Tps() <= 0 {
			t.Fatalf("Tps = %v", res.Tps())
		}
		ro := res.Committed[tpcc.TxOrderStatus] + res.Committed[tpcc.TxStockLevel]
		if ro <= res.Committed[tpcc.TxNewOrder] {
			t.Fatalf("mix skew wrong: ro=%d neworder=%d", ro, res.Committed[tpcc.TxNewOrder])
		}
		// Read-heavy mixes should abort (almost) never.
		if res.AbortRate() > 0.05 {
			t.Fatalf("abort rate %.3f for read mix", res.AbortRate())
		}
	})
}

func TestShardableMixHasNoRemoteAccesses(t *testing.T) {
	cfg := smallCfg()
	rng := rand.New(rand.NewSource(3))
	gen := tpcc.NewInputGen(cfg, tpcc.ShardableMix(), 1, 1, rng)
	for i := 0; i < 3000; i++ {
		typ, input := gen.Next()
		switch typ {
		case tpcc.TxNewOrder:
			in := input.(*tpcc.NewOrderInput)
			if in.Remote {
				t.Fatal("shardable mix produced a remote new-order")
			}
			for _, it := range in.Items {
				if it.SupplyW != in.W {
					t.Fatal("remote supply warehouse in shardable mix")
				}
			}
		case tpcc.TxPayment:
			in := input.(*tpcc.PaymentInput)
			if in.Remote || in.CW != in.W {
				t.Fatal("remote payment in shardable mix")
			}
		}
	}
}

func TestStandardMixRemoteFractions(t *testing.T) {
	cfg := tpcc.Config{Warehouses: 10, Scale: 0.02, Seed: 9}
	rng := rand.New(rand.NewSource(4))
	gen := tpcc.NewInputGen(cfg, tpcc.StandardMix(), 3, 1, rng)
	newOrders, remoteNO := 0, 0
	payments, remotePay := 0, 0
	for i := 0; i < 30000; i++ {
		typ, input := gen.Next()
		switch typ {
		case tpcc.TxNewOrder:
			newOrders++
			if input.(*tpcc.NewOrderInput).Remote {
				remoteNO++
			}
		case tpcc.TxPayment:
			payments++
			if input.(*tpcc.PaymentInput).Remote {
				remotePay++
			}
		}
	}
	// ~10% of new-orders have a remote item (10 items × 1%); 15% of
	// payments are remote. Allow generous tolerance.
	noFrac := float64(remoteNO) / float64(newOrders)
	payFrac := float64(remotePay) / float64(payments)
	if noFrac < 0.05 || noFrac > 0.16 {
		t.Fatalf("remote new-order fraction %.3f", noFrac)
	}
	if payFrac < 0.10 || payFrac > 0.20 {
		t.Fatalf("remote payment fraction %.3f", payFrac)
	}
}

func TestNURandRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		if c := tpcc.NURandCustomerID(rng, 3000); c < 1 || c > 3000 {
			t.Fatalf("customer id %d out of range", c)
		}
		if c := tpcc.NURandCustomerID(rng, 60); c < 1 || c > 60 {
			t.Fatalf("scaled customer id %d out of range", c)
		}
		if it := tpcc.NURandItemID(rng, 100000); it < 1 || it > 100000 {
			t.Fatalf("item id %d out of range", it)
		}
		if it := tpcc.NURandItemID(rng, 2000); it < 1 || it > 2000 {
			t.Fatalf("scaled item id %d out of range", it)
		}
	}
	// Skew: NURand concentrates probability on ids whose low bits match
	// the OR pattern, so a sample has far fewer distinct values than a
	// uniform draw would (~18.1k distinct for 20k draws over 100k ids).
	distinct := make(map[int]bool)
	for i := 0; i < 20000; i++ {
		distinct[tpcc.NURandItemID(rng, 100000)] = true
	}
	if len(distinct) > 17000 {
		t.Fatalf("NURand looks uniform: %d distinct of 20000 draws", len(distinct))
	}
}

func TestLastName(t *testing.T) {
	if got := tpcc.LastName(0); got != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", got)
	}
	if got := tpcc.LastName(371); got != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", got)
	}
	if got := tpcc.LastName(999); got != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %q", got)
	}
}
