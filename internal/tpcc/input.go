package tpcc

import (
	"math/rand"

	"tell/internal/env"
)

// TxType enumerates the five TPC-C transactions.
type TxType int

const (
	TxNewOrder TxType = iota
	TxPayment
	TxOrderStatus
	TxDelivery
	TxStockLevel
	numTxTypes
)

func (t TxType) String() string {
	switch t {
	case TxNewOrder:
		return "new-order"
	case TxPayment:
		return "payment"
	case TxOrderStatus:
		return "order-status"
	case TxDelivery:
		return "delivery"
	case TxStockLevel:
		return "stock-level"
	}
	return "?"
}

// Mix is a transaction mix: per-type percentages (summing to 100).
type Mix struct {
	Name string
	Pct  [numTxTypes]int
	// Shardable removes remote new-order items and remote payment
	// customers, making every transaction single-warehouse (§6.4's
	// "TPC-C shardable" variant).
	Shardable bool
}

// StandardMix is the write-intensive standard mix (Table 2): write ratio
// 35.84%, throughput metric TpmC.
func StandardMix() Mix {
	return Mix{Name: "standard", Pct: [numTxTypes]int{45, 43, 4, 4, 4}}
}

// ReadIntensiveMix is the paper's read-intensive mix (Table 2): 9%
// new-order, 84% order-status, 7% stock-level; write ratio 4.89%.
func ReadIntensiveMix() Mix {
	return Mix{Name: "read-intensive", Pct: [numTxTypes]int{9, 0, 84, 0, 7}}
}

// ShardableMix is the standard mix with all cross-warehouse accesses
// removed (remote new-order and payment replaced by local equivalents).
func ShardableMix() Mix {
	m := StandardMix()
	m.Name = "shardable"
	m.Shardable = true
	return m
}

// pick selects a transaction type.
func (m Mix) pick(rng *rand.Rand) TxType {
	r := rng.Intn(100)
	acc := 0
	for t := 0; t < int(numTxTypes); t++ {
		acc += m.Pct[t]
		if r < acc {
			return TxType(t)
		}
	}
	return TxNewOrder
}

// OrderItem is one line of a new-order request.
type OrderItem struct {
	ItemID   int
	SupplyW  int
	Quantity int
}

// NewOrderInput parameterizes one new-order transaction.
type NewOrderInput struct {
	W, D, C int
	Items   []OrderItem
	// InvalidItem marks the spec's 1% of new-orders that reference an
	// unused item id and must roll back (clause 2.4.1.4).
	InvalidItem bool
	// Remote reports whether any item is supplied by a remote warehouse.
	Remote bool
}

// PaymentInput parameterizes one payment transaction.
type PaymentInput struct {
	W, D int
	// Customer selection: by last name (60%) or by id.
	ByLastName bool
	CLast      string
	C          int
	// The customer's home warehouse/district (15% remote).
	CW, CD int
	Amount float64
	Remote bool
}

// OrderStatusInput parameterizes one order-status transaction.
type OrderStatusInput struct {
	W, D       int
	ByLastName bool
	CLast      string
	C          int
}

// DeliveryInput parameterizes one delivery transaction.
type DeliveryInput struct {
	W       int
	Carrier int
}

// StockLevelInput parameterizes one stock-level transaction.
type StockLevelInput struct {
	W, D      int
	Threshold int
}

// InputGen generates transaction inputs for one terminal, bound to a home
// warehouse and district as the spec prescribes.
type InputGen struct {
	cfg   Config
	mix   Mix
	homeW int
	homeD int
	rng   *rand.Rand
}

// NewInputGen creates a generator for a terminal homed at warehouse w,
// district d.
func NewInputGen(cfg Config, mix Mix, w, d int, rng *rand.Rand) *InputGen {
	cfg.fill()
	return &InputGen{cfg: cfg, mix: mix, homeW: w, homeD: d, rng: rng}
}

// Next picks the next transaction type and its input. The returned input is
// one of the *Input types above.
func (g *InputGen) Next() (TxType, any) {
	t := g.mix.pick(g.rng)
	switch t {
	case TxNewOrder:
		return t, g.newOrder()
	case TxPayment:
		return t, g.payment()
	case TxOrderStatus:
		return t, g.orderStatus()
	case TxDelivery:
		return t, &DeliveryInput{W: g.homeW, Carrier: 1 + g.rng.Intn(10)}
	default:
		return t, &StockLevelInput{W: g.homeW, D: g.homeD, Threshold: 10 + g.rng.Intn(11)}
	}
}

func (g *InputGen) otherWarehouse() int {
	if g.cfg.Warehouses == 1 {
		return 1
	}
	for {
		w := 1 + g.rng.Intn(g.cfg.Warehouses)
		if w != g.homeW {
			return w
		}
	}
}

func (g *InputGen) newOrder() *NewOrderInput {
	in := &NewOrderInput{
		W: g.homeW,
		D: 1 + g.rng.Intn(DistrictsPerWarehouse),
		C: NURandCustomerID(g.rng, g.cfg.CustomersPerDistrict()),
	}
	nItems := 5 + g.rng.Intn(11) // 5..15
	// Clause 2.4.1.4: 1% of new-orders carry an invalid item id.
	in.InvalidItem = g.rng.Intn(100) == 0
	for i := 0; i < nItems; i++ {
		item := OrderItem{
			ItemID:   NURandItemID(g.rng, g.cfg.Items()),
			SupplyW:  in.W,
			Quantity: 1 + g.rng.Intn(10),
		}
		// Clause 2.4.1.5: 1% of items come from a remote warehouse.
		if !g.mix.Shardable && g.rng.Intn(100) == 0 {
			item.SupplyW = g.otherWarehouse()
			in.Remote = true
		}
		in.Items = append(in.Items, item)
	}
	return in
}

func (g *InputGen) payment() *PaymentInput {
	in := &PaymentInput{
		W:      g.homeW,
		D:      1 + g.rng.Intn(DistrictsPerWarehouse),
		Amount: 1 + float64(g.rng.Intn(499900))/100,
	}
	in.CW, in.CD = in.W, in.D
	// Clause 2.5.1.2: 15% of payments are for a remote customer.
	if !g.mix.Shardable && g.rng.Intn(100) < 15 {
		in.CW = g.otherWarehouse()
		in.CD = 1 + g.rng.Intn(DistrictsPerWarehouse)
		in.Remote = true
	}
	// 60% select the customer by last name.
	if g.rng.Intn(100) < 60 {
		in.ByLastName = true
		in.CLast = LastName(randLastNameNumber(g.rng) % loadedNameRange(g.cfg))
	} else {
		in.C = NURandCustomerID(g.rng, g.cfg.CustomersPerDistrict())
	}
	return in
}

func (g *InputGen) orderStatus() *OrderStatusInput {
	in := &OrderStatusInput{W: g.homeW, D: 1 + g.rng.Intn(DistrictsPerWarehouse)}
	if g.rng.Intn(100) < 60 {
		in.ByLastName = true
		in.CLast = LastName(randLastNameNumber(g.rng) % loadedNameRange(g.cfg))
	} else {
		in.C = NURandCustomerID(g.rng, g.cfg.CustomersPerDistrict())
	}
	return in
}

// loadedNameRange bounds last-name lookups to names that were actually
// loaded when the customer count is scaled below 1000 per district.
func loadedNameRange(cfg Config) int {
	n := cfg.CustomersPerDistrict()
	if n < 1000 {
		return n
	}
	return 1000
}

// Engine is what a database system must provide to run TPC-C. Each method
// executes one complete transaction and reports whether it committed;
// conflicts surface as committed=false (the terminal does not retry,
// matching the paper's failed-transaction accounting). err is reserved for
// infrastructure failures.
type Engine interface {
	NewOrder(ctx env.Ctx, in *NewOrderInput) (committed bool, err error)
	Payment(ctx env.Ctx, in *PaymentInput) (bool, error)
	OrderStatus(ctx env.Ctx, in *OrderStatusInput) (bool, error)
	Delivery(ctx env.Ctx, in *DeliveryInput) (bool, error)
	StockLevel(ctx env.Ctx, in *StockLevelInput) (bool, error)
}
