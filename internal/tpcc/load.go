package tpcc

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"tell/internal/btree"
	"tell/internal/mvcc"
	"tell/internal/relational"
	"tell/internal/store"
)

// loadTID is the version number of bulk-loaded rows: 0 is visible in every
// snapshot (x ≤ b holds for any base).
const loadTID = 0

// Loaded describes the populated database: the schemas with their assigned
// table ids and the row counts.
type Loaded struct {
	Config  Config
	Schemas map[string]*relational.TableSchema
	Rows    int
	Bytes   int
}

// Load populates a storage cluster with the TPC-C dataset, writing records,
// indexes, schemas and counters through the bulk-load path (the network
// path would dominate experiment set-up time without exercising anything
// the experiments measure; see store.Node.BulkLoad).
func Load(cluster *store.Cluster, cfg Config) (*Loaded, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schemas := Schemas()
	out := &Loaded{Config: cfg, Schemas: make(map[string]*relational.TableSchema)}

	// Assign table ids 1..n and persist the catalog.
	for i, s := range schemas {
		s.ID = uint32(i + 1)
		out.Schemas[s.Name] = s
		if err := cluster.BulkLoad(relational.SchemaKey(s.Name), s.Encode()); err != nil {
			return nil, err
		}
	}
	if err := cluster.BulkLoadCounter([]byte("sys/tableid"), int64(len(schemas))); err != nil {
		return nil, err
	}

	l := &loader{cluster: cluster, cfg: cfg, rng: rng, out: out}
	for _, build := range []func() error{
		l.loadItems, l.loadWarehouses,
	} {
		if err := build(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// loader accumulates per-table state during population.
type loader struct {
	cluster *store.Cluster
	cfg     Config
	rng     *rand.Rand
	out     *Loaded
}

// tableLoader streams rows of one table and builds its indexes.
type tableLoader struct {
	l       *loader
	schema  *relational.TableSchema
	nextRid uint64
	pkPairs []btree.Pair
	secs    map[string][]btree.Pair
}

func (l *loader) table(name string) *tableLoader {
	t := &tableLoader{l: l, schema: l.out.Schemas[name], secs: make(map[string][]btree.Pair)}
	for _, ix := range t.schema.Indexes {
		t.secs[ix.Name] = nil
	}
	return t
}

// add stores one row and collects its index entries.
func (t *tableLoader) add(row relational.Row) error {
	data, err := relational.EncodeRow(t.schema, row)
	if err != nil {
		return err
	}
	t.nextRid++
	rid := t.nextRid
	rec := mvcc.NewRecord(loadTID, data)
	val := rec.Encode()
	if err := t.l.cluster.BulkLoad(relational.RecordKey(t.schema.ID, rid), val); err != nil {
		return err
	}
	t.l.out.Rows++
	t.l.out.Bytes += len(val)
	t.pkPairs = append(t.pkPairs, btree.Pair{
		Key: relational.IndexKeyFromRow(row, t.schema.PKCols),
		Val: relational.RidToIndexVal(rid),
	})
	for _, ix := range t.schema.Indexes {
		key := relational.AppendRid(relational.IndexKeyFromRow(row, ix.Cols), rid)
		t.secs[ix.Name] = append(t.secs[ix.Name], btree.Pair{Key: key, Val: relational.RidToIndexVal(rid)})
	}
	return nil
}

// finish sorts and bulk-builds the table's indexes and sets its rid counter.
func (t *tableLoader) finish() error {
	sortPairs(t.pkPairs)
	if err := btree.BulkBuild(relational.PKIndexName(t.schema.Name), t.pkPairs, 64,
		t.l.cluster.BulkLoad, t.l.cluster.BulkLoadCounter); err != nil {
		return fmt.Errorf("tpcc: pk index of %s: %w", t.schema.Name, err)
	}
	for _, ix := range t.schema.Indexes {
		pairs := t.secs[ix.Name]
		sortPairs(pairs)
		if err := btree.BulkBuild(relational.SecIndexName(t.schema.Name, ix.Name), pairs, 64,
			t.l.cluster.BulkLoad, t.l.cluster.BulkLoadCounter); err != nil {
			return fmt.Errorf("tpcc: index %s of %s: %w", ix.Name, t.schema.Name, err)
		}
	}
	return t.l.cluster.BulkLoadCounter(relational.RidCounterKey(t.schema.ID), int64(t.nextRid))
}

func sortPairs(pairs []btree.Pair) {
	sort.Slice(pairs, func(i, j int) bool { return bytes.Compare(pairs[i].Key, pairs[j].Key) < 0 })
}

func (l *loader) loadItems() error {
	t := l.table(TItem)
	for i := 1; i <= l.cfg.Items(); i++ {
		row := relational.Row{
			relational.I64(int64(i)),
			relational.Str("item-" + randAlnum(l.rng, 4, 8)),
			relational.F64(1 + float64(l.rng.Intn(9900))/100),
			relational.Str(randData(l.rng)),
		}
		if err := t.add(row); err != nil {
			return err
		}
	}
	return t.finish()
}

func (l *loader) loadWarehouses() error {
	wh := l.table(TWarehouse)
	dist := l.table(TDistrict)
	cust := l.table(TCustomer)
	hist := l.table(THistory)
	ord := l.table(TOrders)
	nord := l.table(TNewOrder)
	ol := l.table(TOrderLine)
	stock := l.table(TStock)

	nCust := l.cfg.CustomersPerDistrict()
	nOrd := l.cfg.OrdersPerDistrict()
	for w := 1; w <= l.cfg.Warehouses; w++ {
		if err := wh.add(relational.Row{
			relational.I64(int64(w)),
			relational.Str(wName(w)),
			relational.F64(float64(l.rng.Intn(2000)) / 10000), // 0..0.2
			relational.F64(300000),
		}); err != nil {
			return err
		}
		// Stock: one row per item per warehouse.
		for i := 1; i <= l.cfg.Items(); i++ {
			if err := stock.add(relational.Row{
				relational.I64(int64(w)), relational.I64(int64(i)),
				relational.I64(int64(10 + l.rng.Intn(91))), // 10..100
				relational.I64(0), relational.I64(0), relational.I64(0),
				relational.Str(randData(l.rng)),
			}); err != nil {
				return err
			}
		}
		for d := 1; d <= DistrictsPerWarehouse; d++ {
			if err := dist.add(relational.Row{
				relational.I64(int64(w)), relational.I64(int64(d)),
				relational.Str(fmt.Sprintf("D%02d", d)),
				relational.F64(float64(l.rng.Intn(2000)) / 10000),
				relational.F64(30000),
				relational.I64(int64(nOrd + 1)),
			}); err != nil {
				return err
			}
			// Customers.
			for c := 1; c <= nCust; c++ {
				lastNum := c - 1
				if lastNum >= 1000 {
					lastNum = randLastNameNumber(l.rng)
				}
				credit := "GC"
				if l.rng.Intn(10) == 0 {
					credit = "BC"
				}
				if err := cust.add(relational.Row{
					relational.I64(int64(w)), relational.I64(int64(d)), relational.I64(int64(c)),
					relational.Str(randAlnum(l.rng, 6, 10)),
					relational.Str(LastName(lastNum % 1000)),
					relational.Str(credit),
					relational.F64(float64(l.rng.Intn(5000)) / 10000),
					relational.F64(-10), relational.F64(10),
					relational.I64(1), relational.I64(0),
					relational.Str(randAlnum(l.rng, 20, 40)),
				}); err != nil {
					return err
				}
				// One history row per customer. Loaded h_seq values are
				// negative so they can never collide with runtime rows,
				// whose h_seq is the (positive) transaction id.
				if err := hist.add(relational.Row{
					relational.I64(int64(w)), relational.I64(int64(d)), relational.I64(int64(-c)),
					relational.I64(int64(c)), relational.I64(int64(w)), relational.I64(int64(d)),
					relational.I64(0), relational.F64(10),
				}); err != nil {
					return err
				}
			}
			// Orders over a permutation of customers.
			perm := l.rng.Perm(nCust)
			deliveredUpTo := nOrd * 7 / 10
			for o := 1; o <= nOrd; o++ {
				olCnt := 5 + l.rng.Intn(11) // 5..15
				carrier := int64(0)
				if o <= deliveredUpTo {
					carrier = int64(1 + l.rng.Intn(10))
				}
				if err := ord.add(relational.Row{
					relational.I64(int64(w)), relational.I64(int64(d)), relational.I64(int64(o)),
					relational.I64(int64(perm[o-1] + 1)),
					relational.I64(0), relational.I64(carrier),
					relational.I64(int64(olCnt)), relational.I64(1),
				}); err != nil {
					return err
				}
				if o > deliveredUpTo {
					if err := nord.add(relational.Row{
						relational.I64(int64(w)), relational.I64(int64(d)), relational.I64(int64(o)),
					}); err != nil {
						return err
					}
				}
				for n := 1; n <= olCnt; n++ {
					deliveryD := int64(0)
					amount := 0.0
					if o <= deliveredUpTo {
						deliveryD = 1
					} else {
						amount = float64(1+l.rng.Intn(999899)) / 100
					}
					if err := ol.add(relational.Row{
						relational.I64(int64(w)), relational.I64(int64(d)), relational.I64(int64(o)),
						relational.I64(int64(n)),
						relational.I64(int64(1 + l.rng.Intn(l.cfg.Items()))),
						relational.I64(int64(w)),
						relational.I64(deliveryD),
						relational.I64(5),
						relational.F64(amount),
					}); err != nil {
						return err
					}
				}
			}
		}
	}
	for _, t := range []*tableLoader{wh, dist, cust, hist, ord, nord, ol, stock} {
		if err := t.finish(); err != nil {
			return err
		}
	}
	return nil
}
