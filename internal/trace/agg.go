package trace

import (
	"time"

	"tell/internal/det"
)

// Comp indexes the latency components a transaction's end-to-end time is
// decomposed into. Under the simulator the decomposition can be exhaustive:
// virtual time only advances inside Sleep/Work/blocking waits, so charging
// every such wait to one component makes the residual ("other") ≈ 0.
type Comp int

const (
	// CompService is CPU service time (env.Ctx.Work actually executing).
	CompService Comp = iota
	// CompCoreWait is time queued for a core inside Work.
	CompCoreWait
	// CompPoolWait is time queued for a worker/partition job slot or a
	// client-side batcher.
	CompPoolWait
	// CompNetwork is wire time: transfer + propagation of messages.
	CompNetwork
	// CompRemote is time spent being serviced remotely (handler
	// execution and remote-side queueing seen from the caller).
	CompRemote
	// CompConflict is lock-wait and conflict-handling time (rollback of
	// applied operations, waiting on contended locks).
	CompConflict
	// CompRetry is time consumed by retry backoff and retried attempts.
	CompRetry

	NComps // number of components
)

var compNames = [NComps]string{
	"service", "core-wait", "queue-wait", "network", "remote", "conflict", "retry",
}

func (c Comp) String() string {
	if c < 0 || c >= NComps {
		return "other"
	}
	return compNames[c]
}

// TxnAgg accumulates one transaction's latency components. It is carried
// by the transaction's driving context (Scope.Agg) and mutated only from
// that context, so it needs no lock. All methods are nil-safe.
type TxnAgg struct {
	// Redirect, when ≥ 0, reroutes every Add into that component — set
	// around rollback (CompConflict) and retry (CompRetry) phases so the
	// network/CPU time those phases consume is charged to the cause.
	Redirect Comp
	D        [NComps]time.Duration
}

// NewTxnAgg returns an aggregator with redirection off.
func NewTxnAgg() *TxnAgg { return &TxnAgg{Redirect: -1} }

// Add charges d to component c (or to the redirect target if one is set).
func (a *TxnAgg) Add(c Comp, d time.Duration) {
	if a == nil || d <= 0 {
		return
	}
	if a.Redirect >= 0 {
		c = a.Redirect
	}
	a.D[c] += d
}

// Sum returns the total attributed time.
func (a *TxnAgg) Sum() time.Duration {
	if a == nil {
		return 0
	}
	var s time.Duration
	for _, d := range a.D {
		s += d
	}
	return s
}

// Breakdown is the per-transaction-type aggregate of TxnAgg results.
type Breakdown struct {
	Type   string
	Count  uint64 // transactions folded in (committed + aborted)
	Aborts uint64
	E2E    time.Duration // summed end-to-end latency
	Comp   [NComps]time.Duration
}

// Sum returns the total attributed time across components.
func (b *Breakdown) Sum() time.Duration {
	var s time.Duration
	for _, d := range b.Comp {
		s += d
	}
	return s
}

// Other is the unattributed residual: E2E − Σ components. It can be
// slightly negative when a component overlaps the measurement edge.
func (b *Breakdown) Other() time.Duration { return b.E2E - b.Sum() }

// SeriesPoint is one sample of a per-node time series.
type SeriesPoint struct {
	At time.Duration // window start
	V  float64
}

// NodeSeries is a windowed time series for one node.
type NodeSeries struct {
	Node   string
	Cores  int // number of cores seen (utilization series only)
	Points []SeriesPoint
}

// NodeUtilization aggregates CoreRun intervals into per-node busy
// fractions over fixed windows. Nodes are sorted by name; every node's
// series covers the same [0, horizon) range.
func (r *Recorder) NodeUtilization(window time.Duration) []NodeSeries {
	if r == nil || window <= 0 {
		return nil
	}
	events := r.Events()
	type nodeAcc struct {
		cores int
		busy  map[int]time.Duration // window index -> busy time
	}
	accs := make(map[string]*nodeAcc)
	var horizon time.Duration
	for _, e := range events {
		if e.Kind != KindCoreRun {
			continue
		}
		a := accs[e.Node]
		if a == nil {
			a = &nodeAcc{busy: make(map[int]time.Duration)}
			accs[e.Node] = a
		}
		if int(e.Arg1)+1 > a.cores {
			a.cores = int(e.Arg1) + 1
		}
		end := e.At + e.Dur
		if end > horizon {
			horizon = end
		}
		// Spread the busy interval over the windows it crosses.
		for t := e.At; t < end; {
			wi := int(t / window)
			wEnd := time.Duration(wi+1) * window
			if wEnd > end {
				wEnd = end
			}
			a.busy[wi] += wEnd - t
			t = wEnd
		}
	}
	nWindows := int((horizon + window - 1) / window)
	out := make([]NodeSeries, 0, len(accs))
	for _, node := range det.Keys(accs) {
		a := accs[node]
		s := NodeSeries{Node: node, Cores: a.cores}
		for wi := 0; wi < nWindows; wi++ {
			denom := float64(window) * float64(a.cores)
			s.Points = append(s.Points, SeriesPoint{
				At: time.Duration(wi) * window,
				V:  float64(a.busy[wi]) / denom,
			})
		}
		out = append(out, s)
	}
	return out
}

// MeanUtilization returns each node's overall busy fraction over [0, end of
// last run interval), sorted by node name.
func (r *Recorder) MeanUtilization() []NodeSeries {
	if r == nil {
		return nil
	}
	type nodeAcc struct {
		cores int
		busy  time.Duration
	}
	accs := make(map[string]*nodeAcc)
	var horizon time.Duration
	for _, e := range r.Events() {
		if e.Kind != KindCoreRun {
			continue
		}
		a := accs[e.Node]
		if a == nil {
			a = &nodeAcc{}
			accs[e.Node] = a
		}
		if int(e.Arg1)+1 > a.cores {
			a.cores = int(e.Arg1) + 1
		}
		a.busy += e.Dur
		if end := e.At + e.Dur; end > horizon {
			horizon = end
		}
	}
	if horizon == 0 {
		return nil
	}
	out := make([]NodeSeries, 0, len(accs))
	for _, node := range det.Keys(accs) {
		a := accs[node]
		out = append(out, NodeSeries{Node: node, Cores: a.cores, Points: []SeriesPoint{
			{At: 0, V: float64(a.busy) / (float64(horizon) * float64(a.cores))},
		}})
	}
	return out
}

// QueueDepth aggregates samples of the named counter into per-node
// per-window means, sorted by node name.
func (r *Recorder) QueueDepth(name string, window time.Duration) []NodeSeries {
	if r == nil || window <= 0 {
		return nil
	}
	type acc struct {
		sum map[int]int64
		n   map[int]int64
	}
	accs := make(map[string]*acc)
	maxWin := 0
	for _, e := range r.Events() {
		if e.Kind != KindCounter || e.Name != name {
			continue
		}
		a := accs[e.Node]
		if a == nil {
			a = &acc{sum: make(map[int]int64), n: make(map[int]int64)}
			accs[e.Node] = a
		}
		wi := int(e.At / window)
		a.sum[wi] += e.Arg1
		a.n[wi]++
		if wi+1 > maxWin {
			maxWin = wi + 1
		}
	}
	out := make([]NodeSeries, 0, len(accs))
	for _, node := range det.Keys(accs) {
		a := accs[node]
		s := NodeSeries{Node: node}
		for wi := 0; wi < maxWin; wi++ {
			var v float64
			if a.n[wi] > 0 {
				v = float64(a.sum[wi]) / float64(a.n[wi])
			}
			s.Points = append(s.Points, SeriesPoint{At: time.Duration(wi) * window, V: v})
		}
		out = append(out, s)
	}
	return out
}
