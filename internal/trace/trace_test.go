package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced recorder clock.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

// TestNilRecorderZeroAlloc is the acceptance guard for the disabled path:
// every hook a hot path calls must not allocate on a nil Recorder, and a
// nil TxnAgg must absorb Adds for free.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	var agg *TxnAgg
	var sink SpanID
	allocs := testing.AllocsPerRun(1000, func() {
		if r.Enabled() {
			t.Fatal("nil recorder enabled")
		}
		sink = r.NewID()
		sink = r.Span(0, 1, "n", "s", 0, 1, 2)
		r.Instant(1, "n", "i", 1, 2)
		sink = r.MsgSend(1, "a", "b", 64)
		r.MsgRecv(sink, "b", 64)
		r.CoreRun("n", 0, 0, time.Millisecond)
		r.Counter("n", "q", 3)
		r.CounterAdd("n", "q", 1)
		r.RecordTxn("t", true, time.Millisecond, agg)
		agg.Add(CompService, time.Millisecond)
		_ = agg.Sum()
		_ = r.Now()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates: %v allocs/op", allocs)
	}
	_ = sink
}

// TestScopeHotPathZeroAlloc covers the pattern call sites use: reading an
// ambient *Scope whose recorder is nil and calling through it.
func TestScopeHotPathZeroAlloc(t *testing.T) {
	sc := &Scope{}
	allocs := testing.AllocsPerRun(1000, func() {
		if sc.R.Enabled() {
			t.Fatal("enabled")
		}
		sc.Agg.Add(CompNetwork, time.Microsecond)
		flow := sc.R.MsgSend(sc.Span, "a", "b", 10)
		sc.R.MsgRecv(flow, "b", 10)
	})
	if allocs != 0 {
		t.Fatalf("nil-scope hooks allocate: %v allocs/op", allocs)
	}
}

func TestSpanIDsSequential(t *testing.T) {
	c := &fakeClock{}
	r := New(c.now)
	a, b := r.NewID(), r.NewID()
	if a != 1 || b != 2 {
		t.Fatalf("ids %d, %d", a, b)
	}
	id := r.Span(0, a, "n", "s", 0, 0, 0)
	if id != 3 {
		t.Fatalf("span id %d", id)
	}
	if got := r.Span(7, 0, "n", "s", 0, 0, 0); got != 7 {
		t.Fatalf("pre-allocated id not honored: %d", got)
	}
}

func TestSpanInterval(t *testing.T) {
	c := &fakeClock{}
	r := New(c.now)
	start := c.t
	c.t += 5 * time.Millisecond
	r.Span(0, 0, "n", "work", start, 0, 0)
	ev := r.Events()
	if len(ev) != 1 || ev[0].At != start || ev[0].Dur != 5*time.Millisecond {
		t.Fatalf("events: %+v", ev)
	}
}

func TestTxnAggRedirect(t *testing.T) {
	a := NewTxnAgg()
	a.Add(CompNetwork, time.Millisecond)
	a.Redirect = CompConflict
	a.Add(CompNetwork, time.Millisecond)
	a.Add(CompService, time.Millisecond)
	a.Redirect = -1
	a.Add(CompService, time.Millisecond)
	if a.D[CompNetwork] != time.Millisecond {
		t.Fatalf("network %v", a.D[CompNetwork])
	}
	if a.D[CompConflict] != 2*time.Millisecond {
		t.Fatalf("conflict %v", a.D[CompConflict])
	}
	if a.D[CompService] != time.Millisecond {
		t.Fatalf("service %v", a.D[CompService])
	}
	if a.Sum() != 4*time.Millisecond {
		t.Fatalf("sum %v", a.Sum())
	}
}

func TestBreakdownFolding(t *testing.T) {
	c := &fakeClock{}
	r := New(c.now)
	a := NewTxnAgg()
	a.Add(CompService, 2*time.Millisecond)
	a.Add(CompNetwork, time.Millisecond)
	r.RecordTxn("new-order", true, 4*time.Millisecond, a)
	r.RecordTxn("new-order", false, 2*time.Millisecond, nil)
	bds := r.Breakdowns()
	if len(bds) != 1 {
		t.Fatalf("breakdowns: %+v", bds)
	}
	b := bds[0]
	if b.Count != 2 || b.Aborts != 1 || b.E2E != 6*time.Millisecond {
		t.Fatalf("breakdown: %+v", b)
	}
	if b.Sum() != 3*time.Millisecond || b.Other() != 3*time.Millisecond {
		t.Fatalf("sum %v other %v", b.Sum(), b.Other())
	}
}

func TestCountersSorted(t *testing.T) {
	c := &fakeClock{}
	r := NewCounters(c.now)
	r.CounterAdd("b", "x", 2)
	r.CounterAdd("a", "y", 1)
	r.Counter("a", "q", 9)
	cs := r.Counters()
	if len(cs) != 3 || cs[0].Name != "a/q" || cs[1].Name != "a/y" || cs[2].Name != "b/x" {
		t.Fatalf("counters: %+v", cs)
	}
	if len(r.Events()) != 0 {
		t.Fatal("counters-only recorder stored events")
	}
}

func TestMaxEventsDrops(t *testing.T) {
	c := &fakeClock{}
	r := New(c.now)
	r.maxEvents = 2
	for i := 0; i < 5; i++ {
		r.Instant(0, "n", "i", 0, 0)
	}
	if len(r.Events()) != 2 || r.Dropped() != 3 {
		t.Fatalf("events %d dropped %d", len(r.Events()), r.Dropped())
	}
}

// buildSample records a small cross-node exchange for exporter tests.
func buildSample() *Recorder {
	c := &fakeClock{}
	r := New(c.now)
	root := r.NewID()
	flow := r.MsgSend(root, "pn0", "sn0", 128)
	c.t += 10 * time.Microsecond
	r.MsgRecv(flow, "sn0", 128)
	hstart := c.t
	c.t += 30 * time.Microsecond
	r.Span(0, flow, "sn0", "handler", hstart, 128, 64)
	r.CoreRun("sn0", 0, hstart, c.t)
	r.Instant(root, "pn0", "read", 7, 1)
	r.Counter("pn0", "jobqueue", 3)
	c.t += 10 * time.Microsecond
	r.Span(root, 0, "pn0", "txn", 0, 1, 1)
	return r
}

func TestChromeTraceWellFormed(t *testing.T) {
	r := buildSample()
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var phases []string
	for _, e := range evs {
		phases = append(phases, e["ph"].(string))
	}
	joined := strings.Join(phases, "")
	for _, want := range []string{"M", "X", "i", "s", "f", "C"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing phase %q in %v", want, phases)
		}
	}
	// The flow arrow endpoints must share an id.
	var sendID, recvID float64
	for _, e := range evs {
		switch e["ph"] {
		case "s":
			sendID = e["id"].(float64)
		case "f":
			recvID = e["id"].(float64)
		}
	}
	if sendID == 0 || sendID != recvID {
		t.Fatalf("flow ids: s=%v f=%v", sendID, recvID)
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSample().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("exports diverged for identical recorders")
	}
}

func TestChromeTraceNilRecorder(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("nil export: %q", buf.String())
	}
}

// TestLaneAllocation: two overlapping spans on one node must land on
// different lanes; a later non-overlapping span reuses the first lane.
func TestLaneAllocation(t *testing.T) {
	c := &fakeClock{}
	r := New(c.now)
	c.t = 10 * time.Microsecond
	r.Span(0, 0, "n", "a", 0, 0, 0) // [0,10)
	c.t = 8 * time.Microsecond
	r.Span(0, 0, "n", "b", 4*time.Microsecond, 0, 0) // [4,8) overlaps a
	c.t = 20 * time.Microsecond
	r.Span(0, 0, "n", "c", 12*time.Microsecond, 0, 0) // [12,20) after both
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	tids := map[string]float64{}
	for _, e := range evs {
		if e["ph"] == "X" {
			tids[e["name"].(string)] = e["tid"].(float64)
		}
	}
	if tids["a"] == tids["b"] {
		t.Fatalf("overlapping spans share a lane: %v", tids)
	}
	if tids["c"] != tids["a"] {
		t.Fatalf("lane not reused after close: %v", tids)
	}
}

func TestUsecFormat(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0.000",
		1500 * time.Nanosecond:  "1.500",
		time.Millisecond:        "1000.000",
		-2500 * time.Nanosecond: "-2.500",
	}
	for d, want := range cases {
		if got := usec(d); got != want {
			t.Errorf("usec(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestNodeUtilization(t *testing.T) {
	c := &fakeClock{}
	r := New(c.now)
	// Core 0 busy [0,1ms) and [1.5ms,2ms); core 1 busy [0,2ms).
	r.CoreRun("n", 0, 0, time.Millisecond)
	r.CoreRun("n", 0, 1500*time.Microsecond, 2*time.Millisecond)
	r.CoreRun("n", 1, 0, 2*time.Millisecond)
	series := r.NodeUtilization(time.Millisecond)
	if len(series) != 1 || series[0].Cores != 2 || len(series[0].Points) != 2 {
		t.Fatalf("series: %+v", series)
	}
	if v := series[0].Points[0].V; v != 1.0 {
		t.Fatalf("window 0 utilization %v", v)
	}
	if v := series[0].Points[1].V; v != 0.75 {
		t.Fatalf("window 1 utilization %v", v)
	}
	mean := r.MeanUtilization()
	if len(mean) != 1 || mean[0].Points[0].V != 0.875 {
		t.Fatalf("mean: %+v", mean)
	}
}

func TestQueueDepth(t *testing.T) {
	c := &fakeClock{}
	r := New(c.now)
	r.Counter("n", "q", 2)
	c.t = 100 * time.Microsecond
	r.Counter("n", "q", 4)
	c.t = 1500 * time.Microsecond
	r.Counter("n", "q", 6)
	series := r.QueueDepth("q", time.Millisecond)
	if len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("series: %+v", series)
	}
	if series[0].Points[0].V != 3 || series[0].Points[1].V != 6 {
		t.Fatalf("points: %+v", series[0].Points)
	}
}
