package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteChromeTrace renders the event log as Chrome trace_event JSON, the
// format Perfetto and chrome://tracing load directly. One process per node
// (pid assigned by sorted node name), with threads for each core, a lane
// set for overlapping spans (greedy first-fit, so nested spans stack like
// a flame graph), an instant/message track, and counter tracks. Message
// sends/receives are joined by flow arrows ("s"/"f" events sharing a flow
// id), so a transaction can be followed hop by hop across nodes.
//
// The output is deterministic: JSON is written field by field (no map
// iteration), nodes are sorted, and timestamps come from the virtual
// clock, so same-seed runs produce byte-identical files.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	return WriteChromeTraceEvents(w, r.Events())
}

// WriteChromeTraceEvents renders an explicit event slice as Chrome
// trace_event JSON with the same layout and determinism guarantees as
// Recorder.WriteChromeTrace. It exists for exporters that hold events
// outside a Recorder — the flight recorder's captured outlier span trees.
func WriteChromeTraceEvents(w io.Writer, events []Event) error {
	// pid per node, sorted by name for stable numbering.
	nodeSet := make(map[string]bool)
	for _, e := range events {
		if e.Node != "" {
			nodeSet[e.Node] = true
		}
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	pid := make(map[string]int, len(nodes))
	for i, n := range nodes {
		pid[n] = i + 1
	}

	// Greedy lane allocation per node so overlapping spans land on
	// distinct tids. Spans are processed in start order; a span takes the
	// first lane whose previous occupant has ended.
	type spanLane struct{ lanes []time.Duration } // per-lane end time
	laneOf := make(map[SpanID]int, len(events))
	byNode := make(map[string]*spanLane)
	type spanRef struct {
		idx int
		at  time.Duration
		id  SpanID
	}
	var spans []spanRef
	for i, e := range events {
		if e.Kind == KindSpan {
			spans = append(spans, spanRef{idx: i, at: e.At, id: e.ID})
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].at != spans[j].at {
			return spans[i].at < spans[j].at
		}
		return spans[i].id < spans[j].id
	})
	for _, s := range spans {
		e := events[s.idx]
		sl := byNode[e.Node]
		if sl == nil {
			sl = &spanLane{}
			byNode[e.Node] = sl
		}
		lane := -1
		for li, end := range sl.lanes {
			if end <= e.At {
				lane = li
				break
			}
		}
		if lane < 0 {
			lane = len(sl.lanes)
			sl.lanes = append(sl.lanes, 0)
		}
		sl.lanes[lane] = e.At + e.Dur
		laneOf[e.ID] = lane
	}

	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	// Tid layout within a node's process:
	//   1..N      core busy tracks
	//   msgTid    message sends/receives + flow endpoints
	//   instTid   instant markers
	//   laneTid+k span lanes
	const (
		msgTid  = 98
		instTid = 99
		laneTid = 100
	)

	// Process and thread name metadata, in sorted-node order.
	for _, n := range nodes {
		p := pid[n]
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`, p, quote(n)))
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"msgs"}}`, p, msgTid))
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"events"}}`, p, instTid))
	}

	for _, e := range events {
		p := pid[e.Node]
		switch e.Kind {
		case KindSpan:
			tid := laneTid + laneOf[e.ID]
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s,"args":{"id":%d,"parent":%d,"a1":%d,"a2":%d}}`,
				p, tid, usec(e.At), usec(e.Dur), quote(e.Name), e.ID, e.Parent, e.Arg1, e.Arg2))
		case KindInstant:
			emit(fmt.Sprintf(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":%s,"args":{"parent":%d,"a1":%d,"a2":%d}}`,
				p, instTid, usec(e.At), quote(e.Name), e.Parent, e.Arg1, e.Arg2))
		case KindMsgSend:
			// A zero-width slice to anchor the outgoing flow arrow.
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":1,"name":%s,"args":{"flow":%d,"bytes":%d,"parent":%d}}`,
				p, msgTid, usec(e.At), quote("send:"+e.Name), e.ID, e.Arg1, e.Parent))
			emit(fmt.Sprintf(`{"ph":"s","pid":%d,"tid":%d,"ts":%s,"id":%d,"name":"msg","cat":"net"}`,
				p, msgTid, usec(e.At), e.ID))
		case KindMsgRecv:
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":1,"name":"recv","args":{"flow":%d,"bytes":%d}}`,
				p, msgTid, usec(e.At), e.ID, e.Arg1))
			emit(fmt.Sprintf(`{"ph":"f","bp":"e","pid":%d,"tid":%d,"ts":%s,"id":%d,"name":"msg","cat":"net"}`,
				p, msgTid, usec(e.At), e.ID))
		case KindCoreRun:
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":"run"}`,
				p, int(e.Arg1)+1, usec(e.At), usec(e.Dur)))
		case KindCounter:
			emit(fmt.Sprintf(`{"ph":"C","pid":%d,"ts":%s,"name":%s,"args":{"v":%d}}`,
				p, usec(e.At), quote(e.Name), e.Arg1))
		}
	}
	if _, err := io.WriteString(bw, "\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// usec renders a duration as trace_event microseconds with nanosecond
// precision ("12.345").
func usec(d time.Duration) string {
	ns := d.Nanoseconds()
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// quote JSON-escapes a name string. Names are node names and short
// literals, so only the basic escapes matter.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
