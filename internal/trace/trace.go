// Package trace is the deterministic event-tracing and telemetry layer
// for the simulator and the real-network runtime. A Recorder stamps typed
// span events with the owning environment's clock (virtual time under
// internal/sim), so two runs with the same seed produce byte-identical
// traces — attribution you can diff, which no wall-clock tracer offers.
//
// The Recorder is designed to be free when absent: every hook method has a
// nil-receiver fast path, takes only scalar/string arguments (no variadics,
// no interface boxing), and is safe to call unconditionally from hot paths.
// Code reaches the recorder ambiently through env.Ctx.Trace(), which hands
// out a *Scope carrying the recorder, the current causal parent span, and
// (while a transaction is being measured) a per-transaction latency
// aggregator.
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"tell/internal/det"
)

// SpanID identifies a span or a message flow. IDs are allocated
// sequentially, so under the deterministic kernel the numbering itself is
// reproducible. Zero means "no parent".
type SpanID uint64

// Kind discriminates Event records.
type Kind uint8

const (
	// KindSpan is a closed interval [At, At+Dur) of named activity on a
	// node (transaction lifecycle step, message handler, ...).
	KindSpan Kind = iota
	// KindInstant is a point event (read/write/abort marker, B+tree
	// split, commit-manager epoch tick).
	KindInstant
	// KindMsgSend marks a message leaving Node; ID is the flow id that
	// the matching KindMsgRecv carries, Arg1 the payload size in bytes.
	KindMsgSend
	// KindMsgRecv marks a message arriving at Node (same ID as the send).
	KindMsgRecv
	// KindCoreRun is a busy interval [At, At+Dur) of core Arg1 on Node.
	KindCoreRun
	// KindCounter samples a named per-node counter (e.g. queue depth);
	// Arg1 is the sampled value.
	KindCounter
)

// Event is one trace record. The struct is flat (no pointers beyond the
// two strings, which are shared literals or node names) so the event log
// is a single slice with no per-event allocation.
type Event struct {
	Kind   Kind
	At     time.Duration // event (or interval start) time on the env clock
	Dur    time.Duration // interval length for KindSpan / KindCoreRun
	ID     SpanID        // span id, or flow id for msg send/recv
	Parent SpanID        // causal parent span (0 = root)
	Node   string
	Name   string
	Arg1   int64
	Arg2   int64
}

// DefaultMaxEvents bounds the in-memory event log (~64 B/event ⇒ ~256 MiB
// at the cap). Past the cap events are counted in Dropped but not stored;
// aggregation (breakdowns, counters) keeps running regardless.
const DefaultMaxEvents = 4 << 20

// Tap observes every event at the moment it is recorded, independently of
// whether the event log stores it — a counters-only Recorder (maxEvents 0)
// still feeds its tap, which is how a daemon's flight recorder sees span
// trees without the Recorder buffering anything. TraceEvent is called with
// the Recorder's internal lock held: implementations must be fast,
// non-blocking, and must never call back into the Recorder.
type Tap interface {
	TraceEvent(Event)
}

// Recorder collects events and running aggregates. All methods are safe on
// a nil receiver (no-ops), which is the "tracing disabled" representation.
type Recorder struct {
	now       func() time.Duration
	maxEvents int

	nextID atomic.Uint64

	mu        sync.Mutex
	tap       Tap
	events    []Event
	dropped   uint64
	breakdown map[string]*Breakdown
	totals    map[string]int64 // "node/name" -> last value for counters
}

// New returns a Recorder stamping events with now — the owning
// environment's clock, injected so this package needs no dependency on
// internal/env or internal/sim.
func New(now func() time.Duration) *Recorder {
	return &Recorder{
		now:       now,
		maxEvents: DefaultMaxEvents,
		breakdown: make(map[string]*Breakdown),
		totals:    make(map[string]int64),
	}
}

// NewCounters returns a Recorder that keeps only running aggregates
// (counters, breakdowns) and stores no events — the cheap always-on mode
// a daemon uses to serve stats snapshots.
func NewCounters(now func() time.Duration) *Recorder {
	r := New(now)
	r.maxEvents = 0
	return r
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Now reads the recorder's clock (zero when disabled).
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.now()
}

// NewID allocates the next span/flow id.
func (r *Recorder) NewID() SpanID {
	if r == nil {
		return 0
	}
	return SpanID(r.nextID.Add(1))
}

// SetTap installs t as the recorder's event tap (nil removes it). Install
// before the run starts; the tap sees every subsequent event in recording
// order, which is deterministic under the simulation kernel.
func (r *Recorder) SetTap(t Tap) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tap = t
	r.mu.Unlock()
}

func (r *Recorder) append(e Event) {
	r.mu.Lock()
	if r.tap != nil {
		r.tap.TraceEvent(e)
	}
	if r.maxEvents > 0 && len(r.events) < r.maxEvents {
		r.events = append(r.events, e)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Span records a closed interval that started at start and ends now.
// id may be pre-allocated (to hand to children before the span closes) or
// zero to allocate one here; the used id is returned.
func (r *Recorder) Span(id, parent SpanID, node, name string, start time.Duration, a1, a2 int64) SpanID {
	if r == nil {
		return 0
	}
	if id == 0 {
		id = r.NewID()
	}
	end := r.now()
	r.append(Event{Kind: KindSpan, At: start, Dur: end - start, ID: id,
		Parent: parent, Node: node, Name: name, Arg1: a1, Arg2: a2})
	return id
}

// Instant records a point event at the current time.
func (r *Recorder) Instant(parent SpanID, node, name string, a1, a2 int64) {
	if r == nil {
		return
	}
	r.append(Event{Kind: KindInstant, At: r.now(), ID: r.NewID(),
		Parent: parent, Node: node, Name: name, Arg1: a1, Arg2: a2})
}

// MsgSend records a message leaving src and returns the flow id the
// receiver should acknowledge with MsgRecv. parent is the span on whose
// behalf the message travels.
func (r *Recorder) MsgSend(parent SpanID, src, dst string, bytes int64) SpanID {
	if r == nil {
		return 0
	}
	id := r.NewID()
	r.append(Event{Kind: KindMsgSend, At: r.now(), ID: id, Parent: parent,
		Node: src, Name: dst, Arg1: bytes})
	return id
}

// MsgRecv records the arrival at dst of the message with flow id id.
func (r *Recorder) MsgRecv(id SpanID, dst string, bytes int64) {
	if r == nil || id == 0 {
		return
	}
	r.append(Event{Kind: KindMsgRecv, At: r.now(), ID: id, Node: dst, Arg1: bytes})
}

// CoreRun records that core unit on node was busy over [start, end).
func (r *Recorder) CoreRun(node string, unit int, start, end time.Duration) {
	if r == nil {
		return
	}
	r.append(Event{Kind: KindCoreRun, At: start, Dur: end - start,
		Node: node, Name: "run", Arg1: int64(unit)})
}

// Counter samples a named per-node counter (queue depth, cache size, ...).
func (r *Recorder) Counter(node, name string, v int64) {
	if r == nil {
		return
	}
	at := r.now()
	e := Event{Kind: KindCounter, At: at, Node: node, Name: name, Arg1: v}
	r.mu.Lock()
	r.totals[node+"/"+name] = v
	if r.tap != nil {
		r.tap.TraceEvent(e)
	}
	if r.maxEvents > 0 && len(r.events) < r.maxEvents {
		r.events = append(r.events, e)
	} else if r.maxEvents > 0 {
		r.dropped++
	}
	r.mu.Unlock()
}

// CounterAdd bumps a named per-node running total without storing an
// event — the form daemon counters use.
func (r *Recorder) CounterAdd(node, name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.totals[node+"/"+name] += delta
	r.mu.Unlock()
}

// RecordTxn folds one finished transaction into the per-type breakdown.
// agg may be nil (the transaction was not attributed).
func (r *Recorder) RecordTxn(typ string, committed bool, e2e time.Duration, agg *TxnAgg) {
	if r == nil {
		return
	}
	r.mu.Lock()
	b := r.breakdown[typ]
	if b == nil {
		b = &Breakdown{Type: typ}
		r.breakdown[typ] = b
	}
	b.Count++
	if !committed {
		b.Aborts++
	}
	b.E2E += e2e
	if agg != nil {
		for c := Comp(0); c < NComps; c++ {
			b.Comp[c] += agg.D[c]
		}
	}
	r.mu.Unlock()
}

// Events returns a snapshot of the stored event log (recorded order, which
// is deterministic under the simulation kernel).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Dropped returns how many events were discarded at the MaxEvents cap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// CounterStat is one named running total, for stats snapshots.
type CounterStat struct {
	Name  string // "node/name"
	Value int64
}

// Counters returns the running totals sorted by name.
func (r *Recorder) Counters() []CounterStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CounterStat, 0, len(r.totals))
	for _, k := range det.Keys(r.totals) {
		out = append(out, CounterStat{Name: k, Value: r.totals[k]})
	}
	return out
}

// Breakdowns returns the per-transaction-type latency breakdowns sorted by
// type name.
func (r *Recorder) Breakdowns() []Breakdown {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Breakdown, 0, len(r.breakdown))
	for _, k := range det.Keys(r.breakdown) {
		out = append(out, *r.breakdown[k])
	}
	return out
}

// Scope is the ambient tracing state an env.Ctx carries: the recorder (nil
// when tracing is off), the current causal parent span, and — only on the
// context driving a measured transaction — the latency aggregator. Spawned
// activities inherit R and Span but never Agg, so concurrent sub-activities
// cannot double-count time into one transaction's breakdown.
type Scope struct {
	R    *Recorder
	Span SpanID
	Agg  *TxnAgg
}
