package fdblike_test

import (
	"fmt"
	"testing"
	"time"

	"tell/internal/baseline"
	"tell/internal/env"
	"tell/internal/fdblike"
	"tell/internal/sim"
	"tell/internal/testutil"
	"tell/internal/tpcc"
)

func runFDB(t *testing.T, nodes, terminals, txns int, cfg tpcc.Config) (*tpcc.Result, *fdblike.Engine, *baseline.Dataset) {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 23))
	envr := env.NewSim(k)
	ds := baseline.NewDataset(cfg)
	var enodes []env.Node
	for i := 0; i < nodes; i++ {
		enodes = append(enodes, envr.NewNode(fmt.Sprintf("fdb%d", i), 8))
	}
	seq := envr.NewNode("sequencer", 2)
	resv := envr.NewNode("resolver", 2)
	eng := fdblike.New(fdblike.Config{}, envr, ds, enodes, seq, resv)
	drv := tpcc.NewDriver(cfg, tpcc.StandardMix(), []tpcc.Engine{eng}, terminals, 29)
	driver := envr.NewNode("driver", 4)
	var res *tpcc.Result
	driver.Go("drv", func(ctx env.Ctx) {
		defer k.Stop()
		res = drv.Run(ctx, envr, driver, 10, txns)
	})
	if err := k.RunUntil(sim.Time(30000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if res == nil {
		t.Fatal("driver did not finish")
	}
	return res, eng, ds
}

func TestFDBRunsStandardMix(t *testing.T) {
	cfg := tpcc.Config{Warehouses: 8, Scale: 0.02, Seed: 3}
	res, _, ds := runFDB(t, 3, 24, 300, cfg)
	if res.TotalCommitted() == 0 || res.TpmC() <= 0 {
		t.Fatalf("no throughput: %v", res)
	}
	// Order books must stay consistent (aborted transactions never
	// execute their mutations).
	for _, wh := range ds.Warehouses {
		for _, d := range wh.Districts {
			var maxO int64
			for o := range d.Orders {
				if o > maxO {
					maxO = o
				}
			}
			if d.NextO != maxO+1 {
				t.Fatalf("w%d d%d: nextO=%d maxO=%d", wh.W, d.ID, d.NextO, maxO)
			}
		}
	}
}

func TestFDBOptimisticConflictsDetected(t *testing.T) {
	// Hammer a single warehouse: the central resolver must observe
	// read/write-set overlaps and abort some transactions.
	cfg := tpcc.Config{Warehouses: 1, Scale: 0.02, Seed: 3}
	res, eng, _ := runFDB(t, 2, 24, 300, cfg)
	if eng.Conflicts() == 0 {
		t.Fatal("no optimistic conflicts under single-warehouse contention")
	}
	if res.AbortRate() == 0 {
		t.Fatal("expected aborts from resolver conflicts")
	}
	t.Logf("conflicts=%d abortRate=%.2f", eng.Conflicts(), res.AbortRate())
}

func TestFDBSlowerPerTransactionThanChattyDesignSuggests(t *testing.T) {
	// The chatty SQL layer makes per-transaction latency high: mean
	// latency must exceed 10 round trips' worth.
	cfg := tpcc.Config{Warehouses: 8, Scale: 0.02, Seed: 3}
	res, _, _ := runFDB(t, 3, 8, 200, cfg)
	if mean := res.Latency.Total().Mean(); mean < 500*time.Microsecond {
		t.Fatalf("mean latency %v implausibly low for a per-row-RPC design", mean)
	}
}
