// Package fdblike implements the FoundationDB-style comparison system of
// §6.5: a shared-data database whose commit validation is *centralised* —
// every transaction obtains a read version from a single sequencer and
// submits its read/write sets to a single resolver for optimistic conflict
// checking — and whose SQL layer issues per-row storage requests without
// the batching and index techniques of Tell.
//
// The paper's point is that shared-data "if not done right" still scales
// with nodes but lands a factor ≈30 below Tell; here that gap emerges from
// the chatty SQL layer (one round trip per row read) plus the sequencer and
// resolver round trips on every transaction.
package fdblike

import (
	"sync"
	"time"

	"tell/internal/baseline"
	"tell/internal/env"
	"tell/internal/tpcc"
	"tell/internal/trace"
)

// Costs parameterize the model.
type Costs struct {
	// SQLOverhead is the per-transaction SQL-layer cost.
	SQLOverhead time.Duration
	// PerRowRead is one storage-server round trip: the SQL layer reads
	// row by row.
	PerRowRead time.Duration
	// SequencerRTT is the get-read-version round trip (every transaction).
	SequencerRTT time.Duration
	// ResolverRTT is the commit round trip (write transactions).
	ResolverRTT time.Duration
	// ResolverPerKey is the resolver CPU per read/write-set key — the
	// centralised component every commit funnels through.
	ResolverPerKey time.Duration
	// StoragePerRow is storage-server CPU per row touched.
	StoragePerRow time.Duration
}

// DefaultCosts returns calibrated parameters.
func DefaultCosts() Costs {
	return Costs{
		SQLOverhead: 2 * time.Millisecond,
		// The SQL Layer reads row by row through its Java client stack;
		// calibrated against Table 4's 149ms mean transaction latency.
		PerRowRead:     5 * time.Millisecond,
		SequencerRTT:   300 * time.Microsecond,
		ResolverRTT:    300 * time.Microsecond,
		ResolverPerKey: 5 * time.Microsecond,
		StoragePerRow:  5 * time.Microsecond,
	}
}

// Config assembles an engine.
type Config struct {
	// Workers bounds concurrent transactions per process node.
	Workers int
	Costs   Costs
}

// Engine is an FDB-style shared-data cluster over a native TPC-C dataset.
type Engine struct {
	cfg  Config
	envr env.Full
	ds   *baseline.Dataset

	// sequencer and resolver are the centralised services: dedicated
	// single-node CPU resources every transaction funnels through.
	sequencer env.Node
	resolver  env.Node

	// version state of the optimistic protocol.
	mu          sync.Mutex
	version     uint64
	lastWrite   map[string]uint64
	state       *env.Locker
	conflictCnt uint64

	procs []*procNode
	next  int
}

// procNode is one processing node's worker pool.
type procNode struct {
	node env.Node
	jobs env.Queue
}

// job carries the submitting transaction's tracing scope so the worker's
// time is attributed to it (sc/enq mirror the voltlike partition jobs).
type job struct {
	fn   func(ctx env.Ctx)
	done env.Future
	sc   trace.Scope
	enq  time.Duration
}

// New builds the engine: proc workers on the given nodes plus dedicated
// sequencer and resolver nodes.
func New(cfg Config, envr env.Full, ds *baseline.Dataset, nodes []env.Node, sequencer, resolver env.Node) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	e := &Engine{
		cfg:       cfg,
		envr:      envr,
		ds:        ds,
		sequencer: sequencer,
		resolver:  resolver,
		lastWrite: make(map[string]uint64),
		state:     env.NewLocker(envr),
	}
	for _, n := range nodes {
		pn := &procNode{node: n, jobs: envr.NewQueue()}
		e.procs = append(e.procs, pn)
		for w := 0; w < cfg.Workers; w++ {
			n.Go("fdb-worker", func(ctx env.Ctx) {
				sc := ctx.Trace()
				for {
					v, ok := pn.jobs.Get(ctx)
					if !ok {
						return
					}
					j := v.(*job)
					if j.sc.R != nil {
						saved := *sc
						*sc = j.sc
						j.sc.Agg.Add(trace.CompPoolWait, ctx.Now()-j.enq)
						j.fn(ctx)
						*sc = saved
					} else {
						j.fn(ctx)
					}
					j.done.Set(nil)
				}
			})
		}
	}
	return e
}

// Conflicts returns the number of optimistic aborts.
func (e *Engine) Conflicts() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.conflictCnt
}

// run schedules one transaction on a proc worker.
func (e *Engine) run(ctx env.Ctx, t tpcc.TxType, input any) (bool, error) {
	e.mu.Lock()
	pn := e.procs[e.next%len(e.procs)]
	e.next++
	e.mu.Unlock()
	var ok bool
	j := &job{done: e.envr.NewFuture()}
	j.fn = func(wctx env.Ctx) { ok = e.transact(wctx, t, input) }
	if sc := ctx.Trace(); sc.R != nil {
		j.sc = *sc
		j.enq = ctx.Now()
	}
	pn.jobs.Put(j)
	j.done.Get(ctx)
	return ok, nil
}

// transact is the optimistic protocol: read version → chatty reads →
// central resolution → apply.
func (e *Engine) transact(ctx env.Ctx, t tpcc.TxType, input any) bool {
	c := e.cfg.Costs
	ctx.Work(c.SQLOverhead)

	// 1. Read version from the single sequencer (RTT + sequencer CPU).
	baseline.SleepNet(ctx, c.SequencerRTT)
	e.seqWork(ctx, time.Microsecond)
	e.mu.Lock()
	readVersion := e.version
	e.mu.Unlock()

	// 2. The SQL layer reads rows one round trip at a time (§6.5: no
	// aggressive batching).
	reads, writes := baseline.AccessSet(e.ds, t, input)
	for range reads {
		baseline.SleepRemote(ctx, c.PerRowRead)
	}
	for range writes {
		baseline.SleepRemote(ctx, c.PerRowRead) // writes read the row first
	}
	ctx.Work(time.Duration(len(reads)+len(writes)) * c.StoragePerRow)

	if !baseline.IsWrite(t) {
		// Read-only transactions read at a snapshot and need no commit.
		roStart := ctx.Now()
		e.state.Lock(ctx)
		baseline.Charge(ctx, trace.CompConflict, ctx.Now()-roStart)
		res := baseline.Exec(e.ds, t, input)
		e.state.Unlock()
		return res.OK
	}

	// 3. Commit through the central resolver: validate the read and
	// write sets against versions committed after our read version.
	baseline.SleepNet(ctx, c.ResolverRTT)
	e.resolverWork(ctx, time.Duration(len(reads)+len(writes))*c.ResolverPerKey)

	commitStart := ctx.Now()
	e.state.Lock(ctx)
	baseline.Charge(ctx, trace.CompConflict, ctx.Now()-commitStart)
	conflict := false
	e.mu.Lock()
	for _, k := range append(append([]string{}, reads...), writes...) {
		if e.lastWrite[k] > readVersion {
			conflict = true
			break
		}
	}
	if conflict {
		e.conflictCnt++
		e.mu.Unlock()
		e.state.Unlock()
		return false
	}
	e.version++
	commitVersion := e.version
	for _, k := range writes {
		e.lastWrite[k] = commitVersion
	}
	e.mu.Unlock()
	res := baseline.Exec(e.ds, t, input)
	e.state.Unlock()
	return res.OK
}

// seqWork charges CPU on the sequencer node via a short-lived activity.
func (e *Engine) seqWork(ctx env.Ctx, d time.Duration) { e.remoteWork(ctx, e.sequencer, d) }

// resolverWork charges CPU on the resolver node.
func (e *Engine) resolverWork(ctx env.Ctx, d time.Duration) { e.remoteWork(ctx, e.resolver, d) }

// remoteWork blocks the caller while d of CPU is consumed on node — the
// service-time component of a centralised service under load.
func (e *Engine) remoteWork(ctx env.Ctx, node env.Node, d time.Duration) {
	done := e.envr.NewFuture()
	t0 := ctx.Now()
	node.Go("svc", func(sctx env.Ctx) {
		sctx.Work(d)
		done.Set(nil)
	})
	done.Get(ctx)
	baseline.Charge(ctx, trace.CompRemote, ctx.Now()-t0)
}

// --- tpcc.Engine implementation ---

// NewOrder runs the new-order transaction via the optimistic sequencer/resolver protocol.
func (e *Engine) NewOrder(ctx env.Ctx, in *tpcc.NewOrderInput) (bool, error) {
	return e.run(ctx, tpcc.TxNewOrder, in)
}

// Payment runs the payment transaction via the optimistic sequencer/resolver protocol.
func (e *Engine) Payment(ctx env.Ctx, in *tpcc.PaymentInput) (bool, error) {
	return e.run(ctx, tpcc.TxPayment, in)
}

// OrderStatus runs the order-status transaction via the optimistic sequencer/resolver protocol.
func (e *Engine) OrderStatus(ctx env.Ctx, in *tpcc.OrderStatusInput) (bool, error) {
	return e.run(ctx, tpcc.TxOrderStatus, in)
}

// Delivery runs the delivery transaction via the optimistic sequencer/resolver protocol.
func (e *Engine) Delivery(ctx env.Ctx, in *tpcc.DeliveryInput) (bool, error) {
	return e.run(ctx, tpcc.TxDelivery, in)
}

// StockLevel runs the stock-level transaction via the optimistic sequencer/resolver protocol.
func (e *Engine) StockLevel(ctx env.Ctx, in *tpcc.StockLevelInput) (bool, error) {
	return e.run(ctx, tpcc.TxStockLevel, in)
}
