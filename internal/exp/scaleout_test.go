package exp

import (
	"testing"

	"tell/internal/testutil"
)

// TestScaleoutSkew asserts the experiment's headline claims directly: adding
// an empty SN and rebalancing recovers throughput to within 10% of the
// balanced deployment, the controller actually moved ranges, and the whole
// run — migration schedule included — is byte-identical per seed.
func TestScaleoutSkew(t *testing.T) {
	opt := Options{Seed: testutil.Seed(t, 42)}
	a, err := ScaleoutSkew(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("rows: %v", a.Rows)
	}
	bal, err := runScaleoutSkew(opt, true)
	if err != nil {
		t.Fatal(err)
	}
	el, err := runScaleoutSkew(opt, false)
	if err != nil {
		t.Fatal(err)
	}
	if el.migrations == 0 {
		t.Fatal("rebalancer moved nothing")
	}
	if el.after <= el.before {
		t.Fatalf("scale-out did not help: before %.0f, after %.0f ops/s", el.before, el.after)
	}
	if el.after < 0.9*bal.before {
		t.Fatalf("post-rebalance %.0f ops/s is below 90%% of balanced %.0f",
			el.after, bal.before)
	}
	el2, err := runScaleoutSkew(opt, false)
	if err != nil {
		t.Fatal(err)
	}
	if el2.digest != el.digest || el2.after != el.after {
		t.Fatalf("not deterministic: digest %016x/%016x, after %.2f/%.2f",
			el.digest, el2.digest, el.after, el2.after)
	}
	t.Logf("\n%s", a)
}
