package exp

import (
	"fmt"
	"strings"
	"testing"

	"tell/internal/testutil"
	"tell/internal/tpcc"
	"tell/internal/transport"
)

// quickOpt keeps unit-test experiment runs small.
func quickOpt() Options {
	return Options{Warehouses: 4, Scale: 0.02, Warmup: 20, Measure: 250, Seed: 7}
}

func TestRunTellSmoke(t *testing.T) {
	run, err := RunTell(quickOpt(), TellParams{PNs: 2, SNs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.TpmC() <= 0 {
		t.Fatalf("TpmC = %v", run.Result.TpmC())
	}
	if run.BatchFactor < 1 {
		t.Fatalf("batch factor %v", run.BatchFactor)
	}
	if run.NetRequests == 0 || run.NetBytes == 0 {
		t.Fatal("no network traffic recorded")
	}
}

func TestRunTellScalesWithPNs(t *testing.T) {
	opt := quickOpt()
	opt.Warehouses = 8
	one, err := RunTell(opt, TellParams{PNs: 1, SNs: 3})
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunTell(opt, TellParams{PNs: 4, SNs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if four.Result.TpmC() < 1.5*one.Result.TpmC() {
		t.Fatalf("no scale-out: 1 PN %.0f vs 4 PNs %.0f TpmC",
			one.Result.TpmC(), four.Result.TpmC())
	}
	t.Logf("1 PN: %.0f TpmC, 4 PNs: %.0f TpmC", one.Result.TpmC(), four.Result.TpmC())
}

func TestReplicationCostsThroughput(t *testing.T) {
	opt := quickOpt()
	rf1, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, ReplicationFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	rf3, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, ReplicationFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rf3.Result.TpmC() >= rf1.Result.TpmC() {
		t.Fatalf("RF3 (%.0f) should cost throughput vs RF1 (%.0f)",
			rf3.Result.TpmC(), rf1.Result.TpmC())
	}
	t.Logf("RF1 %.0f vs RF3 %.0f TpmC", rf1.Result.TpmC(), rf3.Result.TpmC())
}

func TestEthernetSlowerThanInfiniBand(t *testing.T) {
	opt := quickOpt()
	ib, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, Network: transport.InfiniBand()})
	if err != nil {
		t.Fatal(err)
	}
	eth, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, Network: transport.Ethernet10G()})
	if err != nil {
		t.Fatal(err)
	}
	if ib.Result.TpmC() < 2*eth.Result.TpmC() {
		t.Fatalf("InfiniBand %.0f vs Ethernet %.0f: expected a clear gap",
			ib.Result.TpmC(), eth.Result.TpmC())
	}
	t.Logf("IB %.0f vs Eth %.0f TpmC (%.1f×)", ib.Result.TpmC(), eth.Result.TpmC(),
		ib.Result.TpmC()/eth.Result.TpmC())
}

func TestRunBaselineSmoke(t *testing.T) {
	opt := quickOpt()
	for _, kind := range []BaselineKind{Voltlike, NDBlike, FDBlike} {
		res, err := RunBaseline(opt, BaselineParams{Kind: kind, Nodes: 2})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.TotalCommitted() == 0 {
			t.Fatalf("%v: nothing committed", kind)
		}
	}
}

func TestGranularityAblation(t *testing.T) {
	tbl, err := AblationGranularity(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	out := tbl.String()
	if !strings.Contains(out, "record") || !strings.Contains(out, "page") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.Note("hello %d", 42)
	s := tbl.String()
	for _, want := range []string{"== x — t ==", "a", "bb", "hello 42"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"table3", "table4", "table5", "sec631", "sec633", "breakdown"} {
		if reg[id] == nil {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if len(Names()) != len(reg) {
		t.Fatal("Names() incomplete")
	}
}

func TestMixDefinitionsMatchTable2(t *testing.T) {
	std := tpcc.StandardMix()
	if std.Pct[tpcc.TxNewOrder] != 45 || std.Pct[tpcc.TxPayment] != 43 {
		t.Fatalf("standard mix: %+v", std.Pct)
	}
	ri := tpcc.ReadIntensiveMix()
	if ri.Pct[tpcc.TxOrderStatus] != 84 || ri.Pct[tpcc.TxStockLevel] != 7 || ri.Pct[tpcc.TxNewOrder] != 9 {
		t.Fatalf("read-intensive mix: %+v", ri.Pct)
	}
	sum := 0
	for _, p := range ri.Pct {
		sum += p
	}
	if sum != 100 {
		t.Fatalf("read mix sums to %d", sum)
	}
}

// TestDeterministicRuns: the whole stack on the simulator is deterministic
// — same seed, same virtual cluster, bit-identical results. This is the
// end-to-end canary for stray map-iteration or wall-clock dependencies.
func TestDeterministicRuns(t *testing.T) {
	opt := quickOpt()
	a, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.TpmC() != b.Result.TpmC() {
		t.Fatalf("TpmC diverged: %v != %v", a.Result.TpmC(), b.Result.TpmC())
	}
	if a.Result.Elapsed != b.Result.Elapsed {
		t.Fatalf("elapsed diverged: %v != %v", a.Result.Elapsed, b.Result.Elapsed)
	}
	if a.NetRequests != b.NetRequests {
		t.Fatalf("request counts diverged: %d != %d", a.NetRequests, b.NetRequests)
	}
}

// TestByteIdenticalSummary is the strict form of TestDeterministicRuns:
// the fully rendered run summary — every formatted metric, latency
// percentiles included — must be byte-for-byte identical across two runs
// with the same seed. Any surviving map-order, wall-clock or global-rand
// dependency shows up here even when the headline numbers happen to agree.
func TestByteIdenticalSummary(t *testing.T) {
	opt := quickOpt()
	opt.Seed = testutil.Seed(t, 7)
	render := func(run *TellRun) string {
		return fmt.Sprintf("%v net=%d req, %d bytes batch=%.4f abort=%.6f",
			run.Result, run.NetRequests, run.NetBytes, run.BatchFactor, run.AbortRate)
	}
	params := TellParams{PNs: 2, SNs: 3, CMs: 2, ReplicationFactor: 2}
	a, err := RunTell(opt, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTell(opt, params)
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := render(a), render(b); sa != sb {
		t.Fatalf("summaries diverged for seed %d:\n  %s\n  %s", opt.Seed, sa, sb)
	}
}

func TestExtPushdown(t *testing.T) {
	tbl, err := ExtPushdown(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %v", tbl.Rows)
	}
	// Both strategies returned the same row count (column 1).
	if tbl.Rows[0][1] != tbl.Rows[1][1] {
		t.Fatalf("result mismatch: %v", tbl.Rows)
	}
	t.Logf("\n%s", tbl)
}

func TestInterleavedTidsRun(t *testing.T) {
	run, err := RunTell(quickOpt(), TellParams{PNs: 2, SNs: 3, CMs: 2, InterleavedTids: true})
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.TpmC() <= 0 {
		t.Fatalf("TpmC = %v", run.Result.TpmC())
	}
}
