package exp

import (
	"bytes"
	"fmt"
	"time"

	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/recovery"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/transport"
)

// recoveryVictimRecords is how many records the dying node carries; it is
// held constant across cluster sizes so the only variable is how many
// survivors share the replay work.
const recoveryVictimRecords = 600

// RecoveryScale — scatter-gather recovery time versus cluster size. Every
// run kills a storage node carrying the same checkpoint + WAL workload on an
// S3-profile blob backend; RamCloud-style recovery shards the dead node's
// durable objects across all survivors, so wall-clock recovery time shrinks
// as the cluster grows (§4.4.2 and the RamCloud fast-recovery design the SN
// tier follows).
func RecoveryScale(opt Options) (*Table, error) {
	opt.Defaults()
	t := &Table{
		ID: "recovery-scale",
		Title: "Scatter-gather recovery time vs cluster size " +
			"(RF1 durable SNs, S3-profile blob, constant victim data)",
		Header: []string{"SNs", "survivors", "objects", "records", "replayed KB", "recovery", "speedup"},
	}
	var base time.Duration
	for _, sns := range []int{3, 5, 7, 9} {
		rep, err := runRecoveryScale(opt, sns)
		if err != nil {
			return nil, fmt.Errorf("recovery-scale %d SNs: %w", sns, err)
		}
		if base == 0 {
			base = rep.Elapsed
		}
		speedup := 0.0
		if rep.Elapsed > 0 {
			speedup = float64(base) / float64(rep.Elapsed)
		}
		t.AddRow(fmt.Sprint(sns), fmt.Sprint(rep.Survivors), fmt.Sprint(rep.Objects),
			fmt.Sprint(rep.Records), f1(float64(rep.Bytes)/1024),
			rep.Elapsed.Round(100*time.Microsecond).String(), f2(speedup)+"x")
	}
	t.Note("the victim's durable objects (checkpoint chunks + log segments) are sharded round-robin over the survivors and replayed in parallel; every acknowledged write survives (asserted by the recovery and chaos test suites)")
	return t, nil
}

// runRecoveryScale loads a fixed number of records onto one victim node of
// an sns-node durable cluster, kills it, and returns the recovery report.
func runRecoveryScale(opt Options, sns int) (recovery.RecoveryReport, error) {
	k := sim.NewKernel(opt.Seed)
	defer k.Shutdown()
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	be := durable.NewBlob(durable.S3Profile())
	cluster, err := store.NewCluster(envr, net, store.ClusterConfig{
		NumNodes:          sns,
		PartitionsPerNode: 2,
		ReplicationFactor: 1,
		// Small segments and chunks spread the victim's state over enough
		// objects that every survivor gets a comparable replay shard.
		Durable: &store.DurOptions{Backend: be, SegmentBytes: 4 << 10, ChunkBytes: 4 << 10},
	})
	if err != nil {
		return recovery.RecoveryReport{}, err
	}
	rec := recovery.NewSNRecoverer(envr, envr.NewNode("rec0", 2), net, be)
	cluster.Manager.Recoverer = rec
	recovered := envr.NewFuture()
	cluster.Manager.OnFailover = func(addr string) { recovered.Set(addr) }

	pn := envr.NewNode("load0", 4)
	client := cluster.NewClient(pn)
	var runErr error
	pn.Go("driver", func(ctx env.Ctx) {
		defer k.Stop()
		pm, err := client.FetchMap(ctx)
		if err != nil {
			runErr = err
			return
		}
		// Rejection-sample keys owned by the victim so it carries exactly
		// recoveryVictimRecords records regardless of cluster size.
		val := bytes.Repeat([]byte("x"), 128)
		written := 0
		for i := 0; written < recoveryVictimRecords; i++ {
			key := []byte(fmt.Sprintf("rec-%07d", i))
			if p, ok := pm.LookupKey(key); !ok || p.Master != "sn0" {
				continue
			}
			if _, err := client.Put(ctx, key, val); err != nil {
				runErr = fmt.Errorf("put %d: %w", written, err)
				return
			}
			written++
			// A mid-stream checkpoint makes recovery replay both chunk and
			// segment objects, as a long-lived node would.
			if written == recoveryVictimRecords/2 {
				if err := cluster.Node("sn0").Checkpoint(ctx); err != nil {
					runErr = fmt.Errorf("checkpoint: %w", err)
					return
				}
			}
		}
		net.SetDown("sn0", true)
		if _, ok := recovered.GetTimeout(ctx, 120*time.Second); !ok {
			runErr = fmt.Errorf("failover+recovery did not complete")
		}
	})
	if err := k.RunUntil(sim.Time(time.Hour)); err != nil {
		return recovery.RecoveryReport{}, err
	}
	if runErr != nil {
		return recovery.RecoveryReport{}, runErr
	}
	rep := rec.LastReport()
	if rep.Dead != "sn0" || rep.Records == 0 {
		return rep, fmt.Errorf("recovery report incomplete: %+v", rep)
	}
	return rep, nil
}
