package exp

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"tell/internal/env"
	"tell/internal/obs"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/transport"
)

// scaleoutWorkers is the closed-loop client population of the skew runs.
const scaleoutWorkers = 12

// ScaleoutSkew — elastic scale-out under a skewed workload. A 3-SN cluster
// serves a 90/10 workload whose four hot ranges all sit on one node; a
// fourth (empty) SN joins mid-run and the heat-driven placement controller
// moves ranges until the load view balances. The headline: post-rebalance
// throughput within 10% of a cluster that was balanced from the start, and
// a migration schedule reproducible from TELL_SEED alone (the shared-data
// elasticity claim of §7 — storage scales independently of processing — made
// live instead of static).
func ScaleoutSkew(opt Options) (*Table, error) {
	opt.Defaults()
	t := &Table{
		ID: "scaleout-skew",
		Title: "Elastic scale-out under skew (90% of ops on 4 hot ranges, " +
			"RF1, 12 closed-loop clients)",
		Header: []string{"configuration", "SNs", "ops/s", "vs balanced", "actions", "schedule hash"},
	}
	balanced, err := runScaleoutSkew(opt, true)
	if err != nil {
		return nil, fmt.Errorf("scaleout-skew balanced: %w", err)
	}
	elastic, err := runScaleoutSkew(opt, false)
	if err != nil {
		return nil, fmt.Errorf("scaleout-skew elastic: %w", err)
	}
	rel := func(tps float64) string {
		if balanced.before <= 0 {
			return "-"
		}
		return pct(tps / balanced.before)
	}
	t.AddRow("skewed, hot node saturated", "3", f0(elastic.before), rel(elastic.before), "-", "-")
	t.AddRow("+1 empty SN, autonomic rebalance", "4", f0(elastic.after), rel(elastic.after),
		fmt.Sprintf("%d migrations, %d splits", elastic.migrations, elastic.splits),
		fmt.Sprintf("%016x", elastic.digest))
	t.AddRow("balanced from the start", "4", f0(balanced.before), "100.0%", "-", "-")
	t.Note("the controller consumes windowed per-range heat and moves one range per pass until hottest/coldest load drops under the policy ratio; target is post-rebalance throughput within 10%% of the balanced deployment, with a byte-identical schedule (and hash) per TELL_SEED")
	return t, nil
}

// skewReport is one skew run's outcome. For the balanced configuration only
// `before` is set; the elastic run also carries the post-rebalance numbers.
type skewReport struct {
	before     float64
	after      float64
	migrations int
	splits     int
	digest     uint64
}

// runScaleoutSkew drives the closed-loop skew workload. balanced deploys 4
// SNs with the hot ranges spread one per node; the elastic configuration
// starts with 3 SNs, all hot ranges on sn0, and scales out mid-run.
func runScaleoutSkew(opt Options, balanced bool) (skewReport, error) {
	k := sim.NewKernel(opt.Seed)
	defer k.Shutdown()
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cfg := store.ClusterConfig{NumNodes: 3, PartitionsPerNode: 4, ReplicationFactor: 1}
	if balanced {
		cfg = store.ClusterConfig{NumNodes: 4, PartitionsPerNode: 3, ReplicationFactor: 1}
	}
	cluster, err := store.NewCluster(envr, net, cfg)
	if err != nil {
		return skewReport{}, err
	}
	// Short heat windows so the controller sees current rates, not the whole
	// run's history: a moved range must read as hot at its new owner within
	// a burst or two.
	pipe := obs.New(obs.Config{Window: 20 * time.Millisecond, Windows: 8}, envr.Now)
	for _, addr := range cluster.Addrs() {
		cluster.Node(addr).SetObs(pipe)
	}

	// Hot keys live in the 4 hot ranges: all mastered by sn0 in the skewed
	// layout (round-robin puts p0,p3,p6,p9 there), one per node when
	// balanced (p0..p3). Rejection-sample until each pool is full.
	pm := cluster.Manager.Map()
	hotRange := func(key []byte) bool {
		p, ok := pm.LookupKey(key)
		if !ok {
			return false
		}
		if balanced {
			return p.ID < 4
		}
		return p.Master == "sn0"
	}
	var hot, cold [][]byte
	for i := 0; len(hot) < 192 || len(cold) < 192; i++ {
		if i > 200000 {
			return skewReport{}, fmt.Errorf("exp: key sampling did not fill the pools")
		}
		key := []byte(fmt.Sprintf("%06d-skew", i))
		switch {
		case hotRange(key) && len(hot) < 192:
			hot = append(hot, key)
		case !hotRange(key) && len(cold) < 192:
			cold = append(cold, key)
		}
	}

	pn := envr.NewNode("skew-pn", 4)
	client := cluster.NewClient(pn)
	val := []byte(strings.Repeat("v", 64))
	for _, pool := range [][][]byte{hot, cold} {
		for _, key := range pool {
			if err := cluster.BulkLoad(key, val); err != nil {
				return skewReport{}, err
			}
		}
	}
	rep := skewReport{}
	var runErr error

	// phase runs every worker for per closed-loop ops and returns ops/s over
	// the phase's virtual span.
	phase := func(ctx env.Ctx, tag string, per int) float64 {
		start := ctx.Now()
		futs := make([]env.Future, scaleoutWorkers)
		for w := 0; w < scaleoutWorkers; w++ {
			w := w
			fut := envr.NewFuture()
			futs[w] = fut
			pn.Go(fmt.Sprintf("%s-w%d", tag, w), func(ctx env.Ctx) {
				defer fut.Set(nil)
				rng := rand.New(rand.NewSource(opt.Seed*1000 + int64(w)))
				for i := 0; i < per; i++ {
					pool := hot
					if rng.Intn(10) == 0 {
						pool = cold
					}
					key := pool[rng.Intn(len(pool))]
					var err error
					if rng.Intn(2) == 0 {
						_, err = client.Put(ctx, key, val)
					} else {
						_, _, err = client.Get(ctx, key)
					}
					if err != nil && runErr == nil {
						runErr = fmt.Errorf("%s op %d: %w", tag, i, err)
					}
				}
			})
		}
		for _, f := range futs {
			f.Get(ctx)
		}
		elapsed := ctx.Now() - start
		if elapsed <= 0 {
			return 0
		}
		return float64(per*scaleoutWorkers) / elapsed.Seconds()
	}

	pn.Go("skew-driver", func(ctx env.Ctx) {
		defer k.Stop()
		phase(ctx, "warm", 100)
		rep.before = phase(ctx, "measure-before", 300)
		if balanced || runErr != nil {
			return
		}

		// Scale out: a fresh empty node joins, then burst-and-rebalance
		// rounds run until two consecutive controller passes find the load
		// view balanced. Bursts re-warm the heat windows so moved ranges
		// read as hot at their new owners.
		sn, err := cluster.AddStorageNode("sn3")
		if err != nil {
			runErr = err
			return
		}
		sn.SetObs(pipe)
		quiet := 0
		for round := 0; round < 12 && quiet < 2; round++ {
			phase(ctx, fmt.Sprintf("burst%d", round), 60)
			if runErr != nil {
				return
			}
			acted, err := cluster.Manager.RebalanceOnce(ctx)
			if err != nil {
				runErr = fmt.Errorf("rebalance round %d: %w", round, err)
				return
			}
			if acted {
				quiet = 0
			} else {
				quiet++
			}
		}
		rep.after = phase(ctx, "measure-after", 300)
	})
	if err := k.RunUntil(sim.Time(time.Hour)); err != nil {
		return skewReport{}, err
	}
	if runErr != nil {
		return skewReport{}, runErr
	}

	h := fnv.New64a()
	for _, line := range cluster.Manager.ScheduleLog() {
		//lint:allow errdiscard hash.Hash Write is documented to never return an error
		h.Write([]byte(line))
		//lint:allow errdiscard hash.Hash Write is documented to never return an error
		h.Write([]byte{'\n'})
		switch {
		case strings.Contains(line, "migrate"):
			rep.migrations++
		case strings.Contains(line, "split"):
			rep.splits++
		}
	}
	rep.digest = h.Sum64()
	return rep, nil
}
