package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"tell/internal/obs"
)

func seriesOpt() Options {
	o := quickOpt()
	o.Series = true
	return o
}

// TestSeriesRunProducesTelemetry checks the end-to-end threading: a Series
// run must come back with per-class latency series from the driver,
// handler-latency series from the storage nodes and commit managers, and
// non-empty per-range heat.
func TestSeriesRunProducesTelemetry(t *testing.T) {
	run, err := RunTell(seriesOpt(), TellParams{PNs: 2, SNs: 3, CMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if run.Obs == nil {
		t.Fatal("Series run returned a nil pipeline")
	}
	nodes := make(map[string]bool)
	metrics := make(map[string]bool)
	for _, d := range run.Obs.Snapshot() {
		nodes[d.Node] = true
		metrics[d.Metric] = true
	}
	for _, want := range []string{"txn", "sn0", "cm0"} {
		if !nodes[want] {
			t.Errorf("no series from node %q (have %v)", want, nodes)
		}
	}
	for _, want := range []string{"lat/new-order", "lat/payment", "rate/committed", "lat/store"} {
		if !metrics[want] {
			t.Errorf("no %q series (have %v)", want, metrics)
		}
	}
	rows := run.Obs.HeatRows()
	if len(rows) == 0 {
		t.Fatal("no heat rows from a measured TPC-C run")
	}
	var ops int64
	for _, r := range rows {
		ops += r.Total.Ops()
	}
	if ops == 0 {
		t.Error("heat rows carry zero operations")
	}
}

// TestObsGoldenDeterminism is the obs-golden gate (`make obs-golden`): two
// runs with the same seed must produce byte-identical telemetry — the text
// dump (series windows, heat rows, breaches, flight captures with their
// content hashes) and the Prometheus exposition.
func TestObsGoldenDeterminism(t *testing.T) {
	render := func() (string, string) {
		opt := seriesOpt()
		opt.Seed = 42
		run, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, CMs: 2})
		if err != nil {
			t.Fatal(err)
		}
		at := run.Obs.Now()
		var dump, prom bytes.Buffer
		if err := run.Obs.WriteDump(&dump, at); err != nil {
			t.Fatal(err)
		}
		if err := run.Obs.WritePrometheus(&prom, at); err != nil {
			t.Fatal(err)
		}
		return dump.String(), prom.String()
	}
	dumpA, promA := render()
	dumpB, promB := render()
	if dumpA != dumpB {
		t.Errorf("telemetry dump differs between same-seed runs:\n%s", firstDiff(dumpA, dumpB))
	}
	if promA != promB {
		t.Errorf("prometheus exposition differs between same-seed runs:\n%s", firstDiff(promA, promB))
	}
	for _, want := range []string{"series txn lat/new-order", "heat sn0", "tell_latency_seconds"} {
		if !strings.Contains(dumpA+promA, want) {
			t.Errorf("golden output missing %q", want)
		}
	}
}

func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\nA: %s\nB: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(la), len(lb))
}

// TestDefaultSLOs pins the default objective set to the classes the TPC-C
// driver emits, so a renamed transaction class cannot silently detach its
// SLO.
func TestDefaultSLOs(t *testing.T) {
	want := map[string]bool{
		"new-order": false, "payment": false, "order-status": false,
		"delivery": false, "stock-level": false,
	}
	for _, s := range DefaultSLOs() {
		if _, ok := want[s.Class]; !ok {
			t.Errorf("SLO for unknown class %q", s.Class)
		}
		want[s.Class] = true
		if s.P50 <= 0 || s.P99 < s.P50 || s.P999 < s.P99 {
			t.Errorf("SLO %q targets not monotone: %+v", s.Class, s)
		}
	}
	for c, seen := range want {
		if !seen {
			t.Errorf("no default SLO for class %q", c)
		}
	}
	_ = obs.SLO{} // keep the obs import pinned to the public type
}
