package exp

import (
	"fmt"
	"sort"
	"time"

	"tell/internal/core"
	"tell/internal/metrics"
	"tell/internal/tpcc"
	"tell/internal/transport"
)

// pnSweep is the processing-node axis of the scale-out figures.
var pnSweep = []int{1, 2, 4, 6, 8}

// Fig5 — scale-out of the processing layer under the write-intensive
// standard mix, for replication factors 1, 2 and 3 (Figure 5).
func Fig5(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig5",
		Title:  "Scale-out processing (write-intensive), TpmC by #PNs and RF",
		Header: []string{"PNs", "RF1 TpmC", "RF2 TpmC", "RF3 TpmC", "RF1 abort", "RF3 abort"},
	}
	for _, pns := range pnSweep {
		cells := []string{fmt.Sprint(pns)}
		var aborts []float64
		for _, rf := range []int{1, 2, 3} {
			run, err := RunTell(opt, TellParams{PNs: pns, SNs: 7, ReplicationFactor: rf})
			if err != nil {
				return nil, err
			}
			cells = append(cells, f0(run.Result.TpmC()))
			if rf != 2 {
				aborts = append(aborts, run.AbortRate)
			}
		}
		cells = append(cells, pct(aborts[0]), pct(aborts[1]))
		t.AddRow(cells...)
	}
	t.Note("paper: RF1 143,114→958,187 TpmC (1→8 PNs); RF3 ≈63%% below RF1 at 8 PNs; abort 2.91%%→14.72%%")
	return t, nil
}

// Fig6 — scale-out under the read-intensive mix (Figure 6).
func Fig6(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Scale-out processing (read-intensive), Tps by #PNs and RF",
		Header: []string{"PNs", "RF1 Tps", "RF2 Tps", "RF3 Tps"},
	}
	for _, pns := range pnSweep {
		cells := []string{fmt.Sprint(pns)}
		for _, rf := range []int{1, 2, 3} {
			run, err := RunTell(opt, TellParams{
				PNs: pns, SNs: 7, ReplicationFactor: rf, Mix: tpcc.ReadIntensiveMix(),
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, f0(run.Result.Tps()))
		}
		t.AddRow(cells...)
	}
	t.Note("paper: replication costs only 25.7%% at RF3/8PNs under reads (vs 63%% write-intensive)")
	return t, nil
}

// Fig7 — scale-out of the storage layer (Figure 7): the SN count barely
// matters while storage is not the bottleneck.
func Fig7(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Scale-out storage (write-intensive, RF3), TpmC by #PNs and #SNs",
		Header: []string{"PNs", "3 SNs", "5 SNs", "7 SNs"},
	}
	for _, pns := range pnSweep {
		cells := []string{fmt.Sprint(pns)}
		for _, sns := range []int{3, 5, 7} {
			run, err := RunTell(opt, TellParams{PNs: pns, SNs: sns, ReplicationFactor: 3})
			if err != nil {
				return nil, err
			}
			cells = append(cells, f0(run.Result.TpmC()))
		}
		t.AddRow(cells...)
	}
	t.Note("paper: throughput difference across 3/5/7 SNs is minimal; memory capacity, not CPU, sizes the storage layer")
	return t, nil
}

// Table3 — commit managers are not a bottleneck (Table 3).
func Table3(opt Options) (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Commit managers (write-intensive, 8 PNs, 7 SNs, RF1)",
		Header: []string{"CMs", "TpmC", "abort rate"},
	}
	for _, cms := range []int{1, 2, 4} {
		run, err := RunTell(opt, TellParams{PNs: 8, SNs: 7, CMs: cms})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(cms), f0(run.Result.TpmC()), pct(run.AbortRate))
	}
	t.Note("paper: no significant impact of the CM count on throughput or abort rate")
	return t, nil
}

// tellLadder is the Tell configuration ladder of Figures 8/9 (by cores).
var tellLadder = []TellParams{
	{PNs: 1, SNs: 3, CMs: 2},
	{PNs: 2, SNs: 4, CMs: 2},
	{PNs: 4, SNs: 5, CMs: 2},
	{PNs: 6, SNs: 6, CMs: 2},
	{PNs: 8, SNs: 7, CMs: 2},
	{PNs: 10, SNs: 7, CMs: 2},
}

// Fig8 — Tell vs the partitioned systems and the shared-data baseline on
// the standard mix with RF3 (Figure 8), by total cores.
func Fig8(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Throughput (TPC-C standard, RF3), TpmC by total cores",
		Header: []string{"system", "cores", "TpmC"},
	}
	for _, p := range tellLadder {
		p.ReplicationFactor = 3
		run, err := RunTell(opt, p)
		if err != nil {
			return nil, err
		}
		t.AddRow("Tell", fmt.Sprint(p.Cores()), f0(run.Result.TpmC()))
	}
	for _, kind := range []BaselineKind{Voltlike, NDBlike, FDBlike} {
		for _, nodes := range []int{3, 6, 9} {
			res, err := RunBaseline(opt, BaselineParams{
				Kind: kind, Nodes: nodes, ReplicationFactor: 3,
			})
			if err != nil {
				return nil, err
			}
			p := BaselineParams{Kind: kind, Nodes: nodes}
			t.AddRow(kind.String(), fmt.Sprint(p.Cores()), f0(res.TpmC()))
		}
	}
	t.Note("paper: Tell 374,894 TpmC at 78 cores vs MySQL Cluster 83,524 and VoltDB 23,183; FoundationDB ≈30× below Tell")
	return t, nil
}

// Fig9 — the perfectly shardable TPC-C variant (Figure 9): VoltDB-style
// now scales and edges out Tell; Tell stays in the same ballpark.
func Fig9(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "Throughput (TPC-C shardable), TpmC by total cores and RF",
		Header: []string{"system", "cores", "RF1 TpmC", "RF3 TpmC"},
	}
	for _, p := range tellLadder {
		p.Mix = tpcc.ShardableMix()
		p.ReplicationFactor = 1
		r1, err := RunTell(opt, p)
		if err != nil {
			return nil, err
		}
		p.ReplicationFactor = 3
		r3, err := RunTell(opt, p)
		if err != nil {
			return nil, err
		}
		t.AddRow("Tell", fmt.Sprint(p.Cores()), f0(r1.Result.TpmC()), f0(r3.Result.TpmC()))
	}
	for _, kind := range []BaselineKind{Voltlike, NDBlike} {
		for _, nodes := range []int{3, 6, 9} {
			var tpmc []string
			for _, rf := range []int{1, 3} {
				res, err := RunBaseline(opt, BaselineParams{
					Kind: kind, Nodes: nodes, ReplicationFactor: rf, Mix: tpcc.ShardableMix(),
				})
				if err != nil {
					return nil, err
				}
				tpmc = append(tpmc, f0(res.TpmC()))
			}
			p := BaselineParams{Kind: kind, Nodes: nodes}
			t.AddRow(kind.String(), fmt.Sprint(p.Cores()), tpmc[0], tpmc[1])
		}
	}
	t.Note("paper: VoltDB peaks at 1.77M TpmC (RF1); Tell reaches 1.56M — 11.7%% less — on the shardable workload")
	return t, nil
}

// latencyRow renders a histogram like the paper's Table 4.
func latencyRow(h *metrics.Histogram) (mean, sigma string) {
	return ms(float64(h.Mean())), ms(float64(h.Stddev()))
}

// Table4 — transaction response times, small vs large configurations.
func Table4(opt Options) (*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "TPC-C transaction response time (mean ± σ)",
		Header: []string{"workload", "system", "small mean", "small σ", "large mean", "large σ"},
	}
	type cfgPair struct {
		small, large TellParams
	}
	tells := cfgPair{
		small: TellParams{PNs: 1, SNs: 3, CMs: 2, ReplicationFactor: 3},
		large: TellParams{PNs: 10, SNs: 7, CMs: 2, ReplicationFactor: 3},
	}
	for _, mix := range []tpcc.Mix{tpcc.StandardMix(), tpcc.ShardableMix()} {
		p := tells
		p.small.Mix, p.large.Mix = mix, mix
		sm, err := RunTell(opt, p.small)
		if err != nil {
			return nil, err
		}
		lg, err := RunTell(opt, p.large)
		if err != nil {
			return nil, err
		}
		sMean, sSig := latencyRow(sm.Result.Latency.Total())
		lMean, lSig := latencyRow(lg.Result.Latency.Total())
		t.AddRow(mix.Name, "Tell", sMean, sSig, lMean, lSig)

		kinds := []BaselineKind{Voltlike, NDBlike, FDBlike}
		if mix.Shardable {
			kinds = []BaselineKind{Voltlike}
		}
		for _, kind := range kinds {
			smB, err := RunBaseline(opt, BaselineParams{Kind: kind, Nodes: 3, ReplicationFactor: 3, Mix: mix})
			if err != nil {
				return nil, err
			}
			lgB, err := RunBaseline(opt, BaselineParams{Kind: kind, Nodes: 9, ReplicationFactor: 3, Mix: mix})
			if err != nil {
				return nil, err
			}
			sMean, sSig := latencyRow(smB.Latency.Total())
			lMean, lSig := latencyRow(lgB.Latency.Total())
			t.AddRow(mix.Name, kind.String(), sMean, sSig, lMean, lSig)
		}
	}
	t.Note("paper (standard, small→large): Tell 14±10→57±41ms; MySQL 34±27→70±40ms; VoltDB 706±723→4493±1875ms; FDB 149±91→163±138ms")
	return t, nil
}

// Table5 — network latency comparison at 8 PNs (Table 5).
func Table5(opt Options) (*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "Network latency (write-intensive, 8 PNs, 7 SNs, RF1)",
		Header: []string{"network", "TpmC", "mean", "σ", "TP99", "TP999"},
	}
	for _, nc := range []transport.NetworkClass{transport.InfiniBand(), transport.Ethernet10G()} {
		run, err := RunTell(opt, TellParams{PNs: 8, SNs: 7, Network: nc})
		if err != nil {
			return nil, err
		}
		h := run.Result.Latency.Total()
		t.AddRow(nc.Name, f0(run.Result.TpmC()),
			ms(float64(h.Mean())), ms(float64(h.Stddev())),
			ms(float64(h.Percentile(99))), ms(float64(h.Percentile(99.9))))
	}
	t.Note("paper: InfiniBand 958,187 TpmC at 14±10ms vs 10GbE 151,611 TpmC at 91±59ms — a >6× gap")
	return t, nil
}

// Fig10 — InfiniBand vs 10 GbE across the PN sweep (Figure 10).
func Fig10(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "Network (write-intensive, RF1, 7 SNs), TpmC by #PNs",
		Header: []string{"PNs", "InfiniBand", "10GbE", "ratio"},
	}
	for _, pns := range pnSweep {
		ib, err := RunTell(opt, TellParams{PNs: pns, SNs: 7, Network: transport.InfiniBand()})
		if err != nil {
			return nil, err
		}
		eth, err := RunTell(opt, TellParams{PNs: pns, SNs: 7, Network: transport.Ethernet10G()})
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if eth.Result.TpmC() > 0 {
			ratio = ib.Result.TpmC() / eth.Result.TpmC()
		}
		t.AddRow(fmt.Sprint(pns), f0(ib.Result.TpmC()), f0(eth.Result.TpmC()), f1(ratio))
	}
	t.Note("paper: InfiniBand more than 6× faster than Ethernet, independent of the PN count")
	return t, nil
}

// Fig11 — the buffering strategies (Figure 11): TB wins; SB's management
// overhead outweighs its hits; SBVS pays for version-set upkeep.
func Fig11(opt Options) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "Buffering strategies (write-intensive, RF1, 7 SNs), TpmC by #PNs",
		Header: []string{"PNs", "TB", "SB", "SBVS10", "SBVS1000"},
	}
	type strat struct {
		buffer core.BufferStrategy
		unit   int
	}
	strats := []strat{{core.TB, 0}, {core.SB, 0}, {core.SBVS, 10}, {core.SBVS, 1000}}
	for _, pns := range pnSweep {
		cells := []string{fmt.Sprint(pns)}
		for _, s := range strats {
			run, err := RunTell(opt, TellParams{
				PNs: pns, SNs: 7, Buffer: s.buffer, CacheUnitSize: s.unit,
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, f0(run.Result.TpmC()))
		}
		t.AddRow(cells...)
	}
	t.Note("paper: TB best throughout; SB hit ratio only 1.42%%; SBVS1000 hits 37.37%% but extra version-set writes cost more than they save")
	return t, nil
}

// Sec631 — contention: fewer warehouses raise the abort rate (§6.3.1).
func Sec631(opt Options) (*Table, error) {
	t := &Table{
		ID:     "sec631",
		Title:  "Contention (write-intensive, 8 PNs, 7 SNs, RF1), by warehouses",
		Header: []string{"warehouses", "TpmC", "abort rate"},
	}
	for _, wh := range []int{4, 8, 16, 32} {
		o := opt
		o.Warehouses = wh
		run, err := RunTell(o, TellParams{PNs: 8, SNs: 7})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(wh), f0(run.Result.TpmC()), pct(run.AbortRate))
	}
	t.Note("paper: at 10 WHs (vs 200) throughput drops only mildly while contention aborts rise")
	return t, nil
}

// Sec633 — the commit-manager synchronization interval (§6.3.3).
func Sec633(opt Options) (*Table, error) {
	t := &Table{
		ID:     "sec633",
		Title:  "CM sync interval (write-intensive, 4 PNs, 2 CMs, RF1)",
		Header: []string{"interval", "TpmC", "abort rate"},
	}
	for _, iv := range []time.Duration{250 * time.Microsecond, time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond} {
		run, err := RunTell(opt, TellParams{PNs: 4, SNs: 5, CMs: 2, SyncInterval: iv})
		if err != nil {
			return nil, err
		}
		t.AddRow(iv.String(), f0(run.Result.TpmC()), pct(run.AbortRate))
	}
	t.Note("paper: a 1ms interval causes no noticeable abort-rate increase")
	return t, nil
}

// AblationBatching — request batching on/off (§5.1).
func AblationBatching(opt Options) (*Table, error) {
	t := &Table{
		ID:     "ablation-batching",
		Title:  "Ablation: request batching (write-intensive, 4 PNs, RF1)",
		Header: []string{"batching", "TpmC", "store requests", "ops/request"},
	}
	for _, off := range []bool{false, true} {
		run, err := RunTell(opt, TellParams{PNs: 4, SNs: 5, NoBatching: off})
		if err != nil {
			return nil, err
		}
		label := "on"
		if off {
			label = "off"
		}
		t.AddRow(label, f0(run.Result.TpmC()), fmt.Sprint(run.NetRequests), f1(run.BatchFactor))
	}
	return t, nil
}

// AblationCoalesce — the commit-path message-coalescing ladder: grouped CM
// operations (finish piggybacking + shared descriptor fetches), delta-encoded
// snapshot descriptors, and adaptive store batching are enabled one at a
// time, then the adaptive batch window is swept. The headline column is CM
// round trips per committed transaction: the split protocol pays ≥ 2 (one
// start, one finished), the grouped protocol a fraction of that.
func AblationCoalesce(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ablation-coalesce",
		Title: "Ablation: commit-path coalescing (write-intensive, 4 PNs, 2 CMs, RF1)",
		Header: []string{"config", "TpmC", "abort", "CM msgs/txn",
			"msgs/txn", "KB/txn"},
	}
	type step struct {
		label string
		p     TellParams
	}
	// A quarter of the one-way link latency: small enough against the
	// round trip that lingering gains messages without costing throughput.
	win := transport.InfiniBand().Latency / 4
	base := TellParams{PNs: 4, SNs: 5, CMs: 2, BatchWindow: win}
	steps := []step{
		{"all off (split CM, greedy batch)", TellParams{PNs: 4, SNs: 5, CMs: 2,
			NoCMCoalesce: true, NoDeltaSnapshots: true, NoAdaptiveBatch: true}},
		{"+grouped CM ops", TellParams{PNs: 4, SNs: 5, CMs: 2,
			NoDeltaSnapshots: true, NoAdaptiveBatch: true}},
		{"+delta snapshots", TellParams{PNs: 4, SNs: 5, CMs: 2,
			NoAdaptiveBatch: true}},
		{"+adaptive batching (all on)", base},
	}
	for _, s := range steps {
		run, err := RunTell(opt, s.p)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.label, f0(run.Result.TpmC()), pct(run.AbortRate),
			f2(run.CMMsgsPerTxn), f1(run.MsgsPerTxn), f1(run.BytesPerTxn/1024))
	}
	// Batch-window sweep with everything on.
	for _, w := range []time.Duration{25 * time.Microsecond, 400 * time.Microsecond} {
		p := base
		p.BatchWindow = w
		run, err := RunTell(opt, p)
		if err != nil {
			return nil, err
		}
		t.AddRow("window "+w.String(), f0(run.Result.TpmC()), pct(run.AbortRate),
			f2(run.CMMsgsPerTxn), f1(run.MsgsPerTxn), f1(run.BytesPerTxn/1024))
	}
	t.Note("grouped CM ops fold finish() into the next start() and share descriptor fetches; target is CM msgs/txn < 2 with an unchanged abort rate")
	return t, nil
}

// AblationResilience — the RPC resilience layer under injected network
// faults: a sweep of drop/duplicate/delay rates on every message leg, with
// deadlines, deterministic retries, exactly-once dedup and overload
// shedding absorbing them below the engine. The headline claim: at 1% drop
// + 1% dup, goodput (committed transactions per second) stays within 10% of
// the fault-free baseline, and the retry schedule digest is reproducible
// from TELL_SEED alone.
func AblationResilience(opt Options) (*Table, error) {
	t := &Table{
		ID: "ablation-resilience",
		Title: "Ablation: RPC resilience under network faults " +
			"(write-intensive, 4 PNs, 2 CMs, RF2)",
		Header: []string{"faults", "Tps", "goodput", "p99", "retries/txn",
			"replays", "sheds", "retry hash"},
	}
	type step struct {
		label                string
		drop, dup, delayProb float64
	}
	steps := []step{
		{"none (baseline)", 0, 0, 0},
		{"0.5% drop", 0.005, 0, 0},
		{"1% drop", 0.01, 0, 0},
		{"1% dup", 0, 0.01, 0},
		{"1% drop + 1% dup", 0.01, 0.01, 0},
		{"1% drop + 1% dup + 5% delay", 0.01, 0.01, 0.05},
		{"2% drop + 2% dup", 0.02, 0.02, 0},
	}
	// The timeout sits just above the fabric's per-RPC p99 (~tens of µs on
	// the simulated InfiniBand) instead of a conservative multiple: a false
	// timeout is harmless — the retry carries the same idempotency token
	// and the server's dedup window replays the cached response — so the
	// cost of a dropped leg is one timeout plus one short backoff.
	base := TellParams{
		PNs: 4, SNs: 5, CMs: 2, ReplicationFactor: 2, Workers: 48,
		NetTimeout: 150 * time.Microsecond,
		MaxDelay:   100 * time.Microsecond,
	}
	var baseline float64
	for i, s := range steps {
		p := base
		p.DropProb, p.DupProb, p.DelayProb = s.drop, s.dup, s.delayProb
		run, err := RunTell(opt, p)
		if err != nil {
			return nil, err
		}
		if run.Anomalies > 0 {
			return nil, fmt.Errorf("ablation-resilience: %d snapshot-isolation anomalies under %q", run.Anomalies, s.label)
		}
		tps := run.Result.Tps()
		if i == 0 {
			baseline = tps
		}
		goodput := 1.0
		if baseline > 0 {
			goodput = tps / baseline
		}
		t.AddRow(s.label, f0(tps), pct(goodput),
			run.Result.Latency.Total().Percentile(0.99).String(),
			f2(run.RetriesPerTxn), fmt.Sprint(run.Replays),
			fmt.Sprint(run.Sheds), fmt.Sprintf("%016x", run.RetryHash))
	}
	t.Note("goodput is Tps relative to the fault-free baseline; 'replays' are dedup-window cache hits (a duplicate or retried write answered without re-executing); the retry hash is the merged digest of every client's retry schedule — identical across runs with the same TELL_SEED; every faulted run is checked by the offline SI history checker and had zero anomalies")
	return t, nil
}

// AblationIndexCache — B+tree inner-node caching on/off (§5.3.1).
func AblationIndexCache(opt Options) (*Table, error) {
	t := &Table{
		ID:     "ablation-indexcache",
		Title:  "Ablation: index inner-node caching (write-intensive, 4 PNs, RF1)",
		Header: []string{"caching", "TpmC", "store requests"},
	}
	for _, off := range []bool{false, true} {
		run, err := RunTell(opt, TellParams{PNs: 4, SNs: 5, NoIndexCache: off})
		if err != nil {
			return nil, err
		}
		label := "on"
		if off {
			label = "off"
		}
		t.AddRow(label, f0(run.Result.TpmC()), fmt.Sprint(run.NetRequests))
	}
	return t, nil
}

// AblationTidRange — the tid allocation range size (§4.2).
func AblationTidRange(opt Options) (*Table, error) {
	t := &Table{
		ID:     "ablation-tidrange",
		Title:  "Ablation: tid range size (write-intensive, 4 PNs, 2 CMs, RF1)",
		Header: []string{"range", "TpmC", "abort rate"},
	}
	for _, r := range []int64{1, 16, 256, 4096} {
		run, err := RunTell(opt, TellParams{PNs: 4, SNs: 5, CMs: 2, TidRange: r})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(r), f0(run.Result.TpmC()), pct(run.AbortRate))
	}
	// The §4.2 future-work variant: interleaved allocation.
	run, err := RunTell(opt, TellParams{PNs: 4, SNs: 5, CMs: 2, TidRange: 256, InterleavedTids: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("256 interleaved", f0(run.Result.TpmC()), pct(run.AbortRate))
	t.Note("range 1 makes every Begin bump the shared counter; large ranges delay base advancement; 'interleaved' is the §4.2 future-work scheme")
	return t, nil
}

// Registry maps experiment ids to their runners.
func Registry() map[string]func(Options) (*Table, error) {
	return map[string]func(Options) (*Table, error){
		"fig5":                 Fig5,
		"fig6":                 Fig6,
		"fig7":                 Fig7,
		"table3":               Table3,
		"fig8":                 Fig8,
		"fig9":                 Fig9,
		"table4":               Table4,
		"table5":               Table5,
		"fig10":                Fig10,
		"fig11":                Fig11,
		"sec631":               Sec631,
		"sec633":               Sec633,
		"ablation-batching":    AblationBatching,
		"ablation-coalesce":    AblationCoalesce,
		"ablation-resilience":  AblationResilience,
		"ablation-indexcache":  AblationIndexCache,
		"ablation-tidrange":    AblationTidRange,
		"ablation-granularity": AblationGranularity,
		"ext-pushdown":         ExtPushdown,
		"breakdown":            Breakdown,
		"recovery-scale":       RecoveryScale,
		"scaleout-skew":        ScaleoutSkew,
	}
}

// Names returns the experiment ids in stable order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
