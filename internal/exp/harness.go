// Package exp defines the paper's experiments: one runner per evaluation
// table and figure (§6). Every experiment assembles a virtual cluster on
// the discrete-event simulator, loads TPC-C, drives terminals, and reports
// the same rows/series the paper reports. cmd/tellbench and bench_test.go
// are thin wrappers around this package.
package exp

import (
	"fmt"
	"time"

	"tell/internal/baseline"
	"tell/internal/chaos"
	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/fdblike"
	"tell/internal/histcheck"
	"tell/internal/ndblike"
	"tell/internal/obs"
	"tell/internal/resil"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/tpcc"
	"tell/internal/trace"
	"tell/internal/transport"
	"tell/internal/voltlike"
)

// Options are the workload knobs shared by all experiments.
type Options struct {
	// Warehouses is the TPC-C scale factor. The paper used 200 on seven
	// storage servers; the default here fits one host (see EXPERIMENTS.md).
	Warehouses int
	// Scale shrinks per-warehouse row counts (see tpcc.Config.Scale).
	Scale float64
	// Warmup and Measure are transaction counts.
	Warmup, Measure int
	// TerminalsPerWorker oversubscribes the PN worker pools so queueing
	// occurs, as the paper's terminal counts did.
	TerminalsPerWorker int
	Seed               int64
	// Trace records a full deterministic event trace of the run; the
	// recorder comes back on TellRun.Trace (or from RunBaselineTraced).
	Trace bool
	// Series enables the windowed telemetry pipeline (internal/obs):
	// per-class SLO series on the virtual clock, per-range heat tracking on
	// every storage node, and the slow-transaction flight recorder. The
	// pipeline comes back on TellRun.Obs. When Trace is off a counters-only
	// recorder is installed so the flight recorder still sees span trees
	// without the run buffering its whole event log.
	Series bool
	// SLOs overrides DefaultSLOs as the per-window latency targets
	// evaluated when Series is set.
	SLOs []obs.SLO
	// Durable attaches a WAL + fuzzy checkpoints to every storage node:
	// "mem" uses the zero-latency blob backend (isolates the protocol
	// overhead of logging before ack), "s3" the latency-injected S3-profile
	// backend. Empty runs the storage tier volatile, as the paper's
	// evaluation did.
	Durable string
}

// Defaults fills zero fields.
func (o *Options) Defaults() {
	if o.Warehouses <= 0 {
		o.Warehouses = 16
	}
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.Warmup <= 0 {
		o.Warmup = 200
	}
	if o.Measure <= 0 {
		o.Measure = 2000
	}
	if o.TerminalsPerWorker <= 0 {
		o.TerminalsPerWorker = 2
	}
	if o.Seed == 0 {
		// TELL_SEED replays a whole experiment run; 42 otherwise.
		o.Seed = env.SeedFromEnv(42)
	}
}

func (o Options) tpccConfig() tpcc.Config {
	return tpcc.Config{Warehouses: o.Warehouses, Scale: o.Scale, Seed: o.Seed}
}

// DefaultSLOs is the per-class latency objective set used when Options.SLOs
// is nil. The targets are calibrated against the simulated InfiniBand
// deployment (§6.2 latencies are sub-millisecond at the median): loose
// enough that a healthy run stays green, tight enough that contention or
// fault injection visibly breaches.
func DefaultSLOs() []obs.SLO {
	return []obs.SLO{
		{Class: "new-order", P50: 2 * time.Millisecond, P99: 20 * time.Millisecond, P999: 80 * time.Millisecond},
		{Class: "payment", P50: 2 * time.Millisecond, P99: 20 * time.Millisecond, P999: 80 * time.Millisecond},
		{Class: "order-status", P50: 1 * time.Millisecond, P99: 10 * time.Millisecond, P999: 40 * time.Millisecond},
		{Class: "delivery", P50: 5 * time.Millisecond, P99: 50 * time.Millisecond, P999: 200 * time.Millisecond},
		{Class: "stock-level", P50: 2 * time.Millisecond, P99: 20 * time.Millisecond, P999: 80 * time.Millisecond},
	}
}

// TellParams configure one Tell deployment.
type TellParams struct {
	PNs, SNs, CMs     int
	ReplicationFactor int
	Workers           int // per PN; default 8
	Network           transport.NetworkClass
	Buffer            core.BufferStrategy
	CacheUnitSize     int
	Mix               tpcc.Mix
	SyncInterval      time.Duration
	Batching          bool // default true (set NoBatching to disable)
	NoBatching        bool
	NoIndexCache      bool
	TidRange          int64
	// InterleavedTids switches the commit managers to the interleaved
	// allocation scheme (§4.2 future work).
	InterleavedTids bool
	// BatchWindow sets the store client's adaptive batching window (how
	// long a sender may linger to widen a batch under load). 0 batches
	// greedily — the client's nonzero default targets real kernel-TCP
	// links, not the simulated fabrics; NoAdaptiveBatch forces greedy
	// draining regardless.
	BatchWindow     time.Duration
	NoAdaptiveBatch bool
	// NoCMCoalesce reverts the commit-manager client to the split
	// protocol: one start RPC and one finished RPC per transaction.
	NoCMCoalesce bool
	// NoDeltaSnapshots makes every grouped CM response carry the full
	// snapshot descriptor instead of a delta against the last acked one.
	NoDeltaSnapshots bool
	// Fault injection (ablation-resilience): per-message-leg probabilities
	// applied to every kind for the whole run. All zero means no injector
	// is installed.
	DropProb, DupProb, DelayProb float64
	MaxDelay                     time.Duration
	// NetTimeout overrides the simulated network's round-trip timeout.
	// Under fault injection the 50ms default would turn every dropped leg
	// into a 50ms stall and drown the retry policy's own deadlines; the
	// resilience experiments use ~2ms.
	NetTimeout time.Duration
	// Admission caps each storage node's concurrently admitted requests
	// (the overload gate); 0 keeps the node default.
	Admission int
}

func (p *TellParams) defaults() {
	if p.PNs <= 0 {
		p.PNs = 1
	}
	if p.SNs <= 0 {
		p.SNs = 3
	}
	if p.CMs <= 0 {
		p.CMs = 1
	}
	if p.ReplicationFactor <= 0 {
		p.ReplicationFactor = 1
	}
	if p.Workers <= 0 {
		p.Workers = 8
	}
	if p.Network.Name == "" {
		p.Network = transport.InfiniBand()
	}
	if p.Mix.Name == "" {
		p.Mix = tpcc.StandardMix()
	}
	if p.SyncInterval <= 0 {
		p.SyncInterval = time.Millisecond
	}
}

// Cores returns the total CPU cores of the deployment, the x-axis of
// Figures 8 and 9 (PN and SN processes get 4 cores — one NUMA unit of the
// paper's servers — commit managers 2, the management node 2).
func (p TellParams) Cores() int {
	return p.PNs*4 + p.SNs*4 + p.CMs*2 + 2
}

// TellRun is the outcome of one Tell deployment run.
type TellRun struct {
	Result *tpcc.Result
	// AbortRate is the overall transaction abort rate (§6.3.1).
	AbortRate float64
	// Requests and bytes on the simulated network (§6.6).
	NetRequests uint64
	NetBytes    uint64
	// BatchFactor is ops per storage request achieved by the batcher.
	BatchFactor float64
	// CMMsgs is the number of commit-manager round trips issued by all
	// processing nodes; CMMsgsPerTxn divides by committed transactions
	// (the split protocol costs ≥ 2, the coalesced one a fraction of
	// that — the target of the ablation-coalesce experiment).
	CMMsgs       uint64
	CMMsgsPerTxn float64
	// MsgsPerTxn and BytesPerTxn are total network round trips and bytes
	// (both directions) per committed transaction (§6.6 reports network
	// cost; these make the per-transaction message budget visible).
	MsgsPerTxn  float64
	BytesPerTxn float64
	// Trace is the event recorder, non-nil when Options.Trace was set.
	Trace *trace.Recorder
	// Obs is the telemetry pipeline, non-nil when Options.Series was set.
	Obs *obs.Pipeline
	// Resilience counters (ablation-resilience). Retries counts transport-
	// level retries scheduled by every store and CM client; RetryHash is the
	// merged deterministic digest of those schedules — with the same
	// TELL_SEED two runs must produce identical hashes. Sheds and Replays
	// are summed over storage nodes and commit managers; Drops/Dups/Delays
	// are the injector's fault counts (zero when no faults configured).
	Retries       uint64
	RetryHash     uint64
	RetriesPerTxn float64
	Sheds         uint64
	Replays       uint64
	Drops         uint64
	Dups          uint64
	Delays        uint64
	// Anomalies is the number of snapshot-isolation violations found by the
	// offline history checker; it is recorded only on fault-injected runs
	// (zero otherwise) and must always be zero.
	Anomalies int
}

// RunTell executes one full Tell deployment run.
func RunTell(opt Options, p TellParams) (*TellRun, error) {
	opt.Defaults()
	p.defaults()
	k := sim.NewKernel(opt.Seed)
	envr := env.NewSim(k)
	var rec *trace.Recorder
	if opt.Trace {
		// Install before any node exists so every activity sees the
		// recorder in its scope.
		rec = trace.New(envr.Now)
		env.SetTracer(envr, rec)
	}
	var pipe *obs.Pipeline
	if opt.Series {
		slos := opt.SLOs
		if slos == nil {
			slos = DefaultSLOs()
		}
		// Adaptive p99.9 capture is on by default: tail-based sampling is
		// the point of the flight recorder, and the threshold is
		// deterministic (same-run history only).
		pipe = obs.New(obs.Config{SLOs: slos, AdaptiveOutliers: true}, envr.Now)
		tracer := rec
		if tracer == nil {
			// Counters-only: spans reach the flight recorder through the
			// tap without the Recorder buffering the run's event log.
			tracer = trace.NewCounters(envr.Now)
			env.SetTracer(envr, tracer)
		}
		tracer.SetTap(pipe.Flight())
	}
	net := transport.NewSimNet(k, p.Network)
	if p.NetTimeout > 0 {
		net.SetTimeout(p.NetTimeout)
	}

	clusterCfg := store.ClusterConfig{
		NumNodes:          p.SNs,
		ReplicationFactor: p.ReplicationFactor,
	}
	switch opt.Durable {
	case "":
	case "mem", "s3":
		prof := durable.MemProfile()
		if opt.Durable == "s3" {
			prof = durable.S3Profile()
		}
		clusterCfg.Durable = &store.DurOptions{
			Backend:         durable.NewBlob(prof),
			SegmentBytes:    256 << 10,
			CheckpointBytes: 8 << 20,
		}
	default:
		return nil, fmt.Errorf("exp: unknown durable backend %q (want mem or s3)", opt.Durable)
	}
	cluster, err := store.NewCluster(envr, net, clusterCfg)
	if err != nil {
		return nil, err
	}
	if _, err := tpcc.Load(cluster, opt.tpccConfig()); err != nil {
		return nil, err
	}
	if pipe != nil {
		// Attach after the bulk load so the heatmap reflects the workload,
		// not the loader's write storm.
		for _, addr := range cluster.Addrs() {
			cluster.Node(addr).SetObs(pipe)
		}
	}
	if p.Admission > 0 {
		for _, addr := range cluster.Addrs() {
			cluster.Node(addr).SetAdmission(p.Admission, time.Millisecond)
		}
	}
	if p.NetTimeout > 0 {
		// Scale backoffs with the tightened timeout everywhere, including
		// the storage nodes' synchronous replication shipping.
		for _, addr := range cluster.Addrs() {
			cluster.Node(addr).SetRetryPolicies(resil.FastPolicies(p.NetTimeout))
		}
	}
	// Fault injection goes in after loading (the workload, not the bulk
	// load, is what the resilience ablation stresses). Faulted runs also
	// record the full transaction history and check it for isolation
	// anomalies: a resilience number from a run that silently lost or
	// double-applied a write would be worthless.
	var inj *chaos.Injector
	var hist *histcheck.History
	if p.DropProb > 0 || p.DupProb > 0 || p.DelayProb > 0 {
		inj = chaos.Install(k, net, chaos.Plan{
			Name: "resilience-faults",
			Msg: []chaos.MessageFaults{{
				DropProb:  p.DropProb,
				DupProb:   p.DupProb,
				DelayProb: p.DelayProb,
				MaxDelay:  p.MaxDelay,
			}},
		}, opt.Seed)
		hist = histcheck.New()
	}

	// Commit managers.
	var cmIDs, cmAddrs []string
	var cms []*commitmgr.Server
	for i := 0; i < p.CMs; i++ {
		cmIDs = append(cmIDs, fmt.Sprintf("cm%d", i))
	}
	for i := 0; i < p.CMs; i++ {
		addr := cmIDs[i]
		node := envr.NewNode(addr, 2)
		cm := commitmgr.New(addr, addr, envr, node, net, cluster.NewClient(node))
		cm.Peers = cmIDs
		cm.SyncInterval = p.SyncInterval
		cm.Interleaved = p.InterleavedTids
		if p.TidRange > 0 {
			cm.TidRange = p.TidRange
		}
		cm.SetObs(pipe)
		if err := cm.Start(); err != nil {
			return nil, err
		}
		cms = append(cms, cm)
		cmAddrs = append(cmAddrs, addr)
	}

	// Processing nodes.
	var pns []*core.PN
	var clients []*store.Client
	var cmClients []*commitmgr.Client
	for i := 0; i < p.PNs; i++ {
		name := fmt.Sprintf("pn%d", i)
		node := envr.NewNode(name, 4)
		sc := cluster.NewClient(node)
		if p.NoBatching {
			sc.SetBatching(false)
		}
		// The deadline window only pays when it is small against the
		// link round trip; on the simulated microsecond-scale fabrics
		// the client's kernel-TCP default would dominate commit latency
		// (and mask effects an experiment isolates, e.g. replication
		// cost), so the harness batches greedily unless the experiment
		// sets a window (ablation-coalesce sweeps it).
		sc.BatchWindow = p.BatchWindow
		if p.NoAdaptiveBatch {
			sc.BatchWindow = 0
		}
		// Each PN talks primarily to "its" commit manager, spreading CM
		// load, with the rest as fail-over targets.
		order := append([]string{cmAddrs[i%len(cmAddrs)]}, cmAddrs...)
		cmc := commitmgr.NewClient(envr, node, net, order)
		if p.NetTimeout > 0 {
			sc.Resil.Policies = resil.FastPolicies(p.NetTimeout)
			cmc.Resil.Policies = resil.FastPolicies(p.NetTimeout)
		}
		cmc.Coalesce = !p.NoCMCoalesce
		cmc.DeltaSnapshots = !p.NoDeltaSnapshots
		pn := core.New(core.Config{
			ID:              name,
			Workers:         p.Workers,
			Buffer:          p.Buffer,
			CacheUnitSize:   p.CacheUnitSize,
			CacheIndexInner: !p.NoIndexCache,
		}, envr, node, net, sc, cmc)
		if hist != nil {
			pn.SetRecorder(hist)
		}
		pn.StartWorkers()
		pns = append(pns, pn)
		clients = append(clients, sc)
		cmClients = append(cmClients, cmc)
	}

	// Terminals.
	driverNode := envr.NewNode("terminals", 4)
	terminals := p.PNs * p.Workers * opt.TerminalsPerWorker
	var engines []tpcc.Engine
	var res *tpcc.Result
	var runErr error
	driverNode.Go("driver", func(ctx env.Ctx) {
		defer k.Stop()
		// The bulk load bypasses the WAL; checkpoint it so durable runs
		// start from a recoverable base, as a real deployment would.
		if clusterCfg.Durable != nil {
			if err := cluster.CheckpointAll(ctx); err != nil {
				runErr = err
				return
			}
		}
		for _, pn := range pns {
			eng, err := tpcc.NewTellEngine(ctx, pn)
			if err != nil {
				runErr = err
				return
			}
			engines = append(engines, eng)
		}
		drv := tpcc.NewDriver(opt.tpccConfig(), p.Mix, engines, terminals, opt.Seed)
		drv.Obs = pipe
		res = drv.Run(ctx, envr, driverNode, opt.Warmup, opt.Measure)
		// Close any still-open windows at the virtual end-of-run so every
		// exporter sees the same final state.
		pipe.Sync(ctx.Now())
	})
	if err := k.RunUntil(sim.Time(6 * time.Hour)); err != nil {
		return nil, err
	}
	k.Shutdown()
	if runErr != nil {
		return nil, runErr
	}
	if res == nil {
		return nil, fmt.Errorf("exp: run did not complete within the virtual deadline")
	}

	out := &TellRun{Result: res, AbortRate: res.AbortRate(), Trace: rec, Obs: pipe}
	st := net.Stats()
	out.NetRequests = st.Requests
	out.NetBytes = st.BytesSent + st.BytesRecv
	var ops, batches uint64
	for _, sc := range clients {
		ops += sc.Ops()
		batches += sc.Batches()
	}
	if batches > 0 {
		out.BatchFactor = float64(ops) / float64(batches)
	}
	for _, cmc := range cmClients {
		out.CMMsgs += cmc.Msgs()
	}
	if committed := res.TotalCommitted(); committed > 0 {
		out.CMMsgsPerTxn = float64(out.CMMsgs) / float64(committed)
		out.MsgsPerTxn = float64(out.NetRequests) / float64(committed)
		out.BytesPerTxn = float64(out.NetBytes) / float64(committed)
	}
	// Resilience counters: merge every client-side retry schedule into one
	// fleet-level digest, and sum server-side shed/replay counts.
	var retriers []*resil.Retrier
	for _, sc := range clients {
		retriers = append(retriers, sc.Resil)
	}
	for _, cmc := range cmClients {
		retriers = append(retriers, cmc.Resil)
	}
	out.RetryHash, out.Retries = resil.MergeSchedule(retriers)
	for _, addr := range cluster.Addrs() {
		sn := cluster.Node(addr)
		out.Sheds += sn.Sheds()
		out.Replays += sn.Replays()
	}
	for _, cm := range cms {
		out.Sheds += cm.Sheds()
		out.Replays += cm.Replays()
	}
	if committed := res.TotalCommitted(); committed > 0 {
		out.RetriesPerTxn = float64(out.Retries) / float64(committed)
	}
	if inj != nil {
		out.Drops, out.Dups, out.Delays = inj.Stats()
	}
	if hist != nil {
		out.Anomalies = len(hist.Check().Anomalies)
	}
	return out, nil
}

// BaselineKind selects a comparison engine.
type BaselineKind int

const (
	Voltlike BaselineKind = iota
	NDBlike
	FDBlike
)

func (b BaselineKind) String() string {
	switch b {
	case Voltlike:
		return "VoltDB-style"
	case NDBlike:
		return "MySQLCluster-style"
	case FDBlike:
		return "FoundationDB-style"
	}
	return "?"
}

// BaselineParams configure a comparison-system run.
type BaselineParams struct {
	Kind              BaselineKind
	Nodes             int // 8-core machines
	ReplicationFactor int
	Mix               tpcc.Mix
	Terminals         int
}

// Cores returns the deployment's total core count.
func (p BaselineParams) Cores() int {
	c := p.Nodes * 8
	if p.Kind == FDBlike {
		c += 4 // sequencer + resolver
	}
	return c
}

// RunBaseline executes one comparison-system run.
func RunBaseline(opt Options, p BaselineParams) (*tpcc.Result, error) {
	res, _, err := RunBaselineTraced(opt, p)
	return res, err
}

// RunBaselineTraced is RunBaseline returning the trace recorder as well
// (nil unless opt.Trace is set).
func RunBaselineTraced(opt Options, p BaselineParams) (*tpcc.Result, *trace.Recorder, error) {
	opt.Defaults()
	if p.Nodes <= 0 {
		p.Nodes = 3
	}
	if p.Mix.Name == "" {
		p.Mix = tpcc.StandardMix()
	}
	if p.Terminals <= 0 {
		p.Terminals = p.Nodes * 16
	}
	k := sim.NewKernel(opt.Seed)
	envr := env.NewSim(k)
	var rec *trace.Recorder
	if opt.Trace {
		rec = trace.New(envr.Now)
		env.SetTracer(envr, rec)
	}
	ds := baseline.NewDataset(opt.tpccConfig())
	var nodes []env.Node
	for i := 0; i < p.Nodes; i++ {
		nodes = append(nodes, envr.NewNode(fmt.Sprintf("node%d", i), 8))
	}
	var eng tpcc.Engine
	switch p.Kind {
	case Voltlike:
		eng = voltlike.New(voltlike.Config{ReplicationFactor: p.ReplicationFactor}, envr, ds, nodes)
	case NDBlike:
		eng = ndblike.New(ndblike.Config{ReplicationFactor: p.ReplicationFactor}, envr, ds, nodes)
	case FDBlike:
		seq := envr.NewNode("sequencer", 2)
		resv := envr.NewNode("resolver", 2)
		eng = fdblike.New(fdblike.Config{}, envr, ds, nodes, seq, resv)
	}
	driverNode := envr.NewNode("terminals", 4)
	var res *tpcc.Result
	driverNode.Go("driver", func(ctx env.Ctx) {
		defer k.Stop()
		drv := tpcc.NewDriver(opt.tpccConfig(), p.Mix, []tpcc.Engine{eng}, p.Terminals, opt.Seed)
		res = drv.Run(ctx, envr, driverNode, opt.Warmup, opt.Measure)
	})
	if err := k.RunUntil(sim.Time(6 * time.Hour)); err != nil {
		return nil, nil, err
	}
	k.Shutdown()
	if res == nil {
		return nil, nil, fmt.Errorf("exp: baseline run did not complete")
	}
	return res, rec, nil
}
