package exp

import (
	"fmt"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/relational"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/tpcc"
	"tell/internal/transport"
)

// ExtPushdown measures the §5.2 extension: an analytical aggregation over
// the TPC-C orderline table executed (a) the baseline way — ship every
// record to the PN — and (b) with selection and projection pushed down into
// the storage nodes. The paper proposes exactly this for mixed workloads;
// the table shows the traffic and latency reduction.
func ExtPushdown(opt Options) (*Table, error) {
	opt.Defaults()
	t := &Table{
		ID:     "ext-pushdown",
		Title:  "Extension (§5.2): push-down selection/projection for analytics",
		Header: []string{"strategy", "rows returned", "MB moved", "query time"},
	}
	k := sim.NewKernel(opt.Seed)
	envr := env.NewSim(k)
	net := transport.NewSimNet(k, transport.InfiniBand())
	cluster, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 3})
	if err != nil {
		return nil, err
	}
	if _, err := tpcc.Load(cluster, opt.tpccConfig()); err != nil {
		return nil, err
	}
	cmNode := envr.NewNode("cm0", 2)
	cm := commitmgr.New("cm0", "cm0", envr, cmNode, net, cluster.NewClient(cmNode))
	if err := cm.Start(); err != nil {
		return nil, err
	}
	pnNode := envr.NewNode("olap", 4)
	pn := core.New(core.Config{ID: "olap"}, envr, pnNode, net,
		cluster.NewClient(pnNode), commitmgr.NewClient(envr, pnNode, net, []string{"cm0"}))

	var tblErr error
	pnNode.Go("query", func(ctx env.Ctx) {
		defer k.Stop()
		table, err := pn.Catalog().OpenTable(ctx, tpcc.TOrderLine)
		if err != nil {
			tblErr = err
			return
		}
		// Query: undelivered order lines (ol_delivery_d = 0), only the
		// amount column — a typical pre-filter for an OLAP aggregate.
		runOnce := func(push bool) (rows int, mb float64, d time.Duration) {
			before := net.Stats()
			start := ctx.Now()
			txn, err := pn.Begin(ctx)
			if err != nil {
				tblErr = err
				return
			}
			if push {
				pred := &store.Predicate{Col: tpcc.OLDeliveryD, Op: store.CmpEQ, Val: relational.I64(0)}
				err = txn.ScanTableFiltered(ctx, table, pred, []int{tpcc.OLAmount},
					func(rid uint64, row relational.Row) bool {
						rows++
						return true
					})
			} else {
				err = txn.ScanTable(ctx, table, func(rid uint64, row relational.Row) bool {
					if row[tpcc.OLDeliveryD].I == 0 {
						rows++
					}
					return true
				})
			}
			if err != nil {
				tblErr = err
			}
			//lint:allow errdiscard read-only analytics scan: commit only releases the snapshot, rows are already counted
			txn.Commit(ctx)
			after := net.Stats()
			mb = float64(after.BytesSent+after.BytesRecv-before.BytesSent-before.BytesRecv) / (1 << 20)
			d = ctx.Now() - start
			return
		}
		fullRows, fullMB, fullD := runOnce(false)
		pushRows, pushMB, pushD := runOnce(true)
		if fullRows != pushRows {
			tblErr = fmt.Errorf("exp: result mismatch: full=%d pushdown=%d", fullRows, pushRows)
			return
		}
		t.AddRow("ship-to-query (baseline)", fmt.Sprint(fullRows), f1(fullMB), fullD.String())
		t.AddRow("push-down (§5.2)", fmt.Sprint(pushRows), f1(pushMB), pushD.String())
		if pushMB > 0 {
			t.Note("identical results; push-down moved %.1f× fewer bytes", fullMB/pushMB)
		}
	})
	if err := k.RunUntil(sim.Time(time.Hour)); err != nil {
		return nil, err
	}
	k.Shutdown()
	if tblErr != nil {
		return nil, tblErr
	}
	return t, nil
}
