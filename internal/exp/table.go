package exp

import (
	"fmt"
	"strings"
)

// Table is one experiment's output in the paper's row/series layout.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-form annotation printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// formatting helpers

func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
func ms(v float64) string  { return fmt.Sprintf("%.2fms", v/1e6) }
