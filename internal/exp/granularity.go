package exp

import (
	"fmt"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/store"
	"tell/internal/transport"
)

// AblationGranularity reproduces the record-vs-page storage-granularity
// argument of §2.2/§5.1 as a storage-layer microbenchmark. Records cannot
// be cached meaningfully in a shared-data system (remote PNs may change
// them anytime), so a page-granularity store performs the *same number of
// requests* as a record-granularity store while moving pageSize× the
// bytes — "a coarse-grained storage scheme would not reduce the number of
// requests to the storage system but only increase network traffic".
func AblationGranularity(opt Options) (*Table, error) {
	opt.Defaults()
	const (
		records    = 20000
		accesses   = 30000
		recordSize = 150
		pageSize   = 16
	)
	t := &Table{
		ID:    "ablation-granularity",
		Title: "Ablation: record vs page storage granularity (random reads)",
		Header: []string{
			"granularity", "requests", "MB moved", "virtual time", "reads/s",
		},
	}
	run := func(label string, group int) error {
		k := sim.NewKernel(opt.Seed)
		envr := env.NewSim(k)
		net := transport.NewSimNet(k, transport.InfiniBand())
		cluster, err := store.NewCluster(envr, net, store.ClusterConfig{NumNodes: 3})
		if err != nil {
			return err
		}
		// Load: one cell per group of `group` records.
		payload := make([]byte, recordSize*group)
		for i := 0; i < records/group; i++ {
			if err := cluster.BulkLoad(gkey(i), payload); err != nil {
				return err
			}
		}
		node := envr.NewNode("pn", 4)
		client := cluster.NewClient(node)
		var elapsed time.Duration
		workers := 16
		done := 0
		for w := 0; w < workers; w++ {
			w := w
			node.Go("reader", func(ctx env.Ctx) {
				rng := ctx.Rand()
				_ = w
				for i := 0; i < accesses/workers; i++ {
					cell := rng.Intn(records) / group
					if _, _, err := client.Get(ctx, gkey(cell)); err != nil {
						return
					}
				}
				done++
				if done == workers {
					elapsed = ctx.Now()
					k.Stop()
				}
			})
		}
		if err := k.RunUntil(sim.Time(time.Hour)); err != nil {
			return err
		}
		k.Shutdown()
		st := net.Stats()
		mb := float64(st.BytesSent+st.BytesRecv) / (1 << 20)
		rate := float64(accesses) / elapsed.Seconds()
		t.AddRow(label, fmt.Sprint(st.Requests), f1(mb), elapsed.String(), f0(rate))
		return nil
	}
	if err := run("record (1 row/cell)", 1); err != nil {
		return nil, err
	}
	if err := run(fmt.Sprintf("page (%d rows/cell)", pageSize), pageSize); err != nil {
		return nil, err
	}
	t.Note("every access re-fetches from the store (shared data defeats caching), so pages cost the same requests but %d× the traffic", pageSize)
	return t, nil
}

func gkey(i int) []byte { return []byte(fmt.Sprintf("g/%08d", i)) }
