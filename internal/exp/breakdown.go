package exp

import (
	"fmt"
	"strings"
	"time"

	"tell/internal/trace"
)

// Breakdown — per-transaction-type latency decomposition from a traced run.
// The trace layer attributes every blocking wait of a transaction to one
// component (network, CPU service, core/queue wait, conflict, retry, remote
// service); under the simulator the attribution is exhaustive, so the
// residual "other" column stays near zero and the components explain the
// end-to-end latency the paper's Table 4 reports.
func Breakdown(opt Options) (*Table, error) {
	opt.Trace = true
	run, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, CMs: 2})
	if err != nil {
		return nil, err
	}
	t := BreakdownTable(run.Trace, "Latency breakdown (write-intensive, 2 PNs, 3 SNs, RF1)")
	t.ID = "breakdown"
	return t, nil
}

// BreakdownTable renders a recorder's per-type latency breakdown plus
// per-node utilization notes. Means are per transaction, in milliseconds.
func BreakdownTable(rec *trace.Recorder, title string) *Table {
	t := &Table{
		ID:    "breakdown",
		Title: title,
		Header: []string{"type", "count", "aborts", "e2e mean",
			"service", "core-wait", "queue-wait", "network", "remote", "conflict", "retry", "other"},
	}
	for _, b := range rec.Breakdowns() {
		if b.Count == 0 {
			continue
		}
		n := float64(b.Count)
		mean := func(d time.Duration) string { return ms(float64(d) / n) }
		cells := []string{b.Type, fmt.Sprint(b.Count), fmt.Sprint(b.Aborts), mean(b.E2E)}
		for c := trace.Comp(0); c < trace.NComps; c++ {
			cells = append(cells, mean(b.Comp[c]))
		}
		cells = append(cells, mean(b.Other()))
		t.AddRow(cells...)
	}
	if util := rec.MeanUtilization(); len(util) > 0 {
		var parts []string
		for _, u := range util {
			parts = append(parts, fmt.Sprintf("%s %.0f%%", u.Node, 100*u.Points[0].V))
		}
		t.Note("utilization: %s", strings.Join(parts, ", "))
	}
	if qd := meanCounter(rec, "jobqueue"); len(qd) > 0 {
		t.Note("mean job-queue depth: %s", strings.Join(qd, ", "))
	}
	if d := rec.Dropped(); d > 0 {
		t.Note("trace buffer overflow: %d events dropped", d)
	}
	return t
}

// meanCounter summarizes a counter's overall per-node mean from the
// QueueDepth series.
func meanCounter(rec *trace.Recorder, name string) []string {
	var out []string
	for _, s := range rec.QueueDepth(name, 100*time.Millisecond) {
		var sum float64
		var n int
		for _, p := range s.Points {
			if p.V > 0 {
				sum += p.V
				n++
			}
		}
		if n == 0 {
			continue
		}
		out = append(out, fmt.Sprintf("%s %.1f", s.Node, sum/float64(n)))
	}
	return out
}
