package exp

import (
	"bytes"
	"testing"
	"time"

	"tell/internal/trace"
)

func tracedRun(t *testing.T) *TellRun {
	t.Helper()
	opt := quickOpt()
	opt.Trace = true
	run, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, CMs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if run.Trace == nil {
		t.Fatal("no recorder on traced run")
	}
	return run
}

// TestByteIdenticalTrace: the full exported trace — every span, flow,
// core-run interval, in recorded order — must be byte-for-byte identical
// across two runs with the same seed. This is the golden-trace determinism
// check the CI step replays with tellbench.
func TestByteIdenticalTrace(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		run := tracedRun(t)
		if err := run.Trace.WriteChromeTrace(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if bufs[0].Len() == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("traces diverged: %d vs %d bytes", bufs[0].Len(), bufs[1].Len())
	}
	t.Logf("trace: %d bytes, identical across runs", bufs[0].Len())
}

// TestTraceStitchesAcrossNodes: following causal links (span Parent ids and
// message flow ids) from one transaction's root span must reach spans on at
// least three distinct nodes — terminal, processing node, and a storage or
// commit-manager node.
func TestTraceStitchesAcrossNodes(t *testing.T) {
	run := tracedRun(t)
	events := run.Trace.Events()

	// children[p] lists the events whose causal parent is span/flow p; a
	// MsgRecv shares the flow id of its MsgSend, so indexing recv events by
	// their own ID chains the arrival node into the flow.
	children := make(map[trace.SpanID][]*trace.Event)
	for i := range events {
		e := &events[i]
		if e.Parent != 0 {
			children[e.Parent] = append(children[e.Parent], e)
		}
		if e.Kind == trace.KindMsgRecv {
			children[e.ID] = append(children[e.ID], e)
		}
	}

	best := 0
	for i := range events {
		e := &events[i]
		if e.Kind != trace.KindSpan || e.Parent != 0 {
			continue
		}
		nodes := map[string]bool{e.Node: true}
		seen := map[trace.SpanID]bool{}
		queue := []trace.SpanID{e.ID}
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			if seen[id] {
				continue
			}
			seen[id] = true
			for _, c := range children[id] {
				nodes[c.Node] = true
				if c.ID != 0 && c.ID != id {
					queue = append(queue, c.ID)
				}
			}
		}
		if len(nodes) > best {
			best = len(nodes)
		}
		if best >= 3 {
			break
		}
	}
	if best < 3 {
		t.Fatalf("no transaction's spans stitch across ≥3 nodes (best %d)", best)
	}
	t.Logf("transaction spans reach %d nodes", best)
}

// TestBreakdownSumsToE2E: the attributed components of every transaction
// type must explain its end-to-end latency — |other| ≤ 1% of e2e, the
// acceptance bound. Under the simulator attribution is exhaustive (time
// only advances in attributed waits), so the residual is rounding only.
func TestBreakdownSumsToE2E(t *testing.T) {
	run := tracedRun(t)
	bds := run.Trace.Breakdowns()
	if len(bds) == 0 {
		t.Fatal("no breakdowns recorded")
	}
	for _, b := range bds {
		if b.Count == 0 {
			continue
		}
		other := b.Other()
		if other < 0 {
			other = -other
		}
		if b.E2E > 0 && float64(other) > 0.01*float64(b.E2E) {
			t.Errorf("%s: |other| %v exceeds 1%% of e2e %v (sum %v over %d txns)",
				b.Type, other, b.E2E, b.Sum(), b.Count)
		}
		t.Logf("%s: n=%d e2e=%v attributed=%v other=%.3f%%",
			b.Type, b.Count, b.E2E, b.Sum(), 100*float64(b.Other())/float64(b.E2E))
	}
}

// TestTracingDoesNotChangeResults: recording a trace must not perturb the
// simulation — virtual-time results are identical with tracing on and off.
func TestTracingDoesNotChangeResults(t *testing.T) {
	opt := quickOpt()
	plain, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, CMs: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt.Trace = true
	traced, err := RunTell(opt, TellParams{PNs: 2, SNs: 3, CMs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Result.TpmC() != traced.Result.TpmC() ||
		plain.Result.Elapsed != traced.Result.Elapsed ||
		plain.NetRequests != traced.NetRequests {
		t.Fatalf("tracing perturbed the run: %v vs %v", plain.Result, traced.Result)
	}
}

// TestBreakdownTableRenders: the breakdown experiment table has the
// component columns and a row per transaction type observed.
func TestBreakdownTableRenders(t *testing.T) {
	run := tracedRun(t)
	tbl := BreakdownTable(run.Trace, "test")
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	if len(tbl.Header) != 4+int(trace.NComps)+1 {
		t.Fatalf("header: %v", tbl.Header)
	}
	t.Logf("\n%s", tbl)
}

// TestBaselineTraceBreakdowns: the three comparison engines attribute their
// latency too, within the same 1% residual bound.
func TestBaselineTraceBreakdowns(t *testing.T) {
	opt := quickOpt()
	opt.Trace = true
	for _, kind := range []BaselineKind{Voltlike, NDBlike, FDBlike} {
		res, rec, err := RunBaselineTraced(opt, BaselineParams{Kind: kind, Nodes: 2})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.TotalCommitted() == 0 {
			t.Fatalf("%v: nothing committed", kind)
		}
		bds := rec.Breakdowns()
		if len(bds) == 0 {
			t.Fatalf("%v: no breakdowns", kind)
		}
		var e2e, attributed time.Duration
		for _, b := range bds {
			e2e += b.E2E
			attributed += b.Sum()
		}
		other := e2e - attributed
		if other < 0 {
			other = -other
		}
		if float64(other) > 0.01*float64(e2e) {
			t.Errorf("%v: |other| %v exceeds 1%% of e2e %v", kind, other, e2e)
		}
		t.Logf("%v: e2e=%v attributed=%v", kind, e2e, attributed)
	}
}
