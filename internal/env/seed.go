package env

import (
	"os"
	"strconv"
)

// SeedEnv is the environment variable that overrides the RNG seed of any
// entrypoint that builds an environment — experiment runners, benchmarks,
// the command-line tools and the sim-based test suites all consult it, so
// one variable replays an entire run:
//
//	TELL_SEED=12345 tellbench fig5
const SeedEnv = "TELL_SEED"

// SeedFromEnv returns $TELL_SEED when set to a valid integer, otherwise
// def. Malformed values fall back to def rather than aborting: a daemon
// must not refuse to start over a bad convenience variable.
func SeedFromEnv(def int64) int64 {
	s := os.Getenv(SeedEnv)
	if s == "" {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return def
	}
	return v
}
