package env

import (
	"math/rand"
	"time"

	"tell/internal/sim"
	"tell/internal/trace"
)

// simEnv adapts the discrete-event simulator to the Env interfaces.
type simEnv struct {
	k  *sim.Kernel
	tr *trace.Recorder
}

// NewSim wraps kernel k as an environment. The caller drives the simulation
// by calling k.Run (or RunFor/RunUntil) after spawning activities.
func NewSim(k *sim.Kernel) Full { return &simEnv{k: k} }

func (e *simEnv) SetTracer(r *trace.Recorder) { e.tr = r }
func (e *simEnv) Tracer() *trace.Recorder     { return e.tr }

func (e *simEnv) Now() time.Duration { return e.k.Now().Duration() }

func (e *simEnv) NewNode(name string, cores int) Node {
	n := &simNode{env: e, name: name, cores: cores, cpu: sim.NewResource(e.k, cores)}
	// Per-core busy intervals feed the trace's core tracks and the node
	// utilization series. CoreRun is a no-op on a nil recorder.
	n.cpu.OnUse = func(unit int, start, end sim.Time) {
		e.tr.CoreRun(n.name, unit, start.Duration(), end.Duration())
	}
	return n
}

func (e *simEnv) NewQueue() Queue   { return &simQueue{q: sim.NewQueue(e.k)} }
func (e *simEnv) NewFuture() Future { return &simFuture{f: sim.NewFuture(e.k)} }

type simNode struct {
	env   *simEnv
	name  string
	cores int
	cpu   *sim.Resource
}

func (n *simNode) Name() string         { return n.name }
func (n *simNode) Cores() int           { return n.cores }
func (n *simNode) Utilization() float64 { return n.cpu.Utilization() }

func (n *simNode) Go(name string, fn func(ctx Ctx)) {
	n.goScoped(name, trace.Scope{R: n.env.tr}, fn)
}

// goScoped spawns an activity whose context starts with the given tracing
// scope (recorder + causal parent span; never the latency aggregator).
func (n *simNode) goScoped(name string, sc trace.Scope, fn func(ctx Ctx)) {
	n.env.k.Go(n.name+"/"+name, func(p *sim.Proc) {
		fn(&simCtx{node: n, p: p, sc: sc})
	})
}

type simCtx struct {
	node *simNode
	p    *sim.Proc
	sc   trace.Scope
}

func (c *simCtx) Node() Node            { return c.node }
func (c *simCtx) Now() time.Duration    { return c.p.Now().Duration() }
func (c *simCtx) Sleep(d time.Duration) { c.p.Sleep(d) }
func (c *simCtx) Trace() *trace.Scope   { return &c.sc }

func (c *simCtx) Work(d time.Duration) {
	if c.sc.Agg == nil {
		c.node.cpu.Use(c.p, d)
		return
	}
	// Split the elapsed time into CPU service and core-queue wait for the
	// transaction this activity is driving.
	t0 := c.p.Now()
	c.node.cpu.Use(c.p, d)
	c.sc.Agg.Add(trace.CompService, d)
	c.sc.Agg.Add(trace.CompCoreWait, c.p.Now().Sub(t0)-d)
}

func (c *simCtx) Go(name string, fn func(ctx Ctx)) {
	// Children inherit the recorder and causal parent, but not the
	// aggregator: a transaction's time is only attributed from the one
	// context driving it, so parallel sub-activities can't double-count.
	c.node.goScoped(name, trace.Scope{R: c.sc.R, Span: c.sc.Span}, fn)
}

func (c *simCtx) Rand() *rand.Rand { return c.node.env.k.Rand() }

// proc extracts the sim process from a simulated Ctx. Simulation-only
// components (for example the simulated network) use it to block callers.
func proc(ctx Ctx) *sim.Proc { return ctx.(*simCtx).p }

// Proc returns the simulation process behind a simulated Ctx. It panics if
// ctx belongs to the real environment; callers should check Kernel first.
func Proc(ctx Ctx) *sim.Proc { return proc(ctx) }

// Kernel returns the sim kernel behind a simulated Ctx, or nil if ctx
// belongs to the real environment.
func Kernel(ctx Ctx) *sim.Kernel {
	if c, ok := ctx.(*simCtx); ok {
		return c.p.Kernel()
	}
	return nil
}

type simQueue struct{ q *sim.Queue }

func (s *simQueue) Put(v any) { s.q.Put(v) }
func (s *simQueue) Close()    { s.q.Close() }
func (s *simQueue) Len() int  { return s.q.Len() }

func (s *simQueue) Get(ctx Ctx) (any, bool) { return s.q.Get(proc(ctx)) }

func (s *simQueue) GetTimeout(ctx Ctx, d time.Duration) (any, bool, bool) {
	return s.q.GetTimeout(proc(ctx), d)
}

type simFuture struct{ f *sim.Future }

func (s *simFuture) Set(v any)       { s.f.Set(v) }
func (s *simFuture) IsSet() bool     { return s.f.IsSet() }
func (s *simFuture) Get(ctx Ctx) any { return s.f.Get(proc(ctx)) }
func (s *simFuture) GetTimeout(ctx Ctx, d time.Duration) (any, bool) {
	return s.f.GetTimeout(proc(ctx), d)
}
