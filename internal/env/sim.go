package env

import (
	"math/rand"
	"time"

	"tell/internal/sim"
)

// simEnv adapts the discrete-event simulator to the Env interfaces.
type simEnv struct {
	k *sim.Kernel
}

// NewSim wraps kernel k as an environment. The caller drives the simulation
// by calling k.Run (or RunFor/RunUntil) after spawning activities.
func NewSim(k *sim.Kernel) Full { return &simEnv{k: k} }

func (e *simEnv) Now() time.Duration { return e.k.Now().Duration() }

func (e *simEnv) NewNode(name string, cores int) Node {
	return &simNode{env: e, name: name, cores: cores, cpu: sim.NewResource(e.k, cores)}
}

func (e *simEnv) NewQueue() Queue   { return &simQueue{q: sim.NewQueue(e.k)} }
func (e *simEnv) NewFuture() Future { return &simFuture{f: sim.NewFuture(e.k)} }

type simNode struct {
	env   *simEnv
	name  string
	cores int
	cpu   *sim.Resource
}

func (n *simNode) Name() string         { return n.name }
func (n *simNode) Cores() int           { return n.cores }
func (n *simNode) Utilization() float64 { return n.cpu.Utilization() }

func (n *simNode) Go(name string, fn func(ctx Ctx)) {
	n.env.k.Go(n.name+"/"+name, func(p *sim.Proc) {
		fn(&simCtx{node: n, p: p})
	})
}

type simCtx struct {
	node *simNode
	p    *sim.Proc
}

func (c *simCtx) Node() Node                       { return c.node }
func (c *simCtx) Now() time.Duration               { return c.p.Now().Duration() }
func (c *simCtx) Sleep(d time.Duration)            { c.p.Sleep(d) }
func (c *simCtx) Work(d time.Duration)             { c.node.cpu.Use(c.p, d) }
func (c *simCtx) Go(name string, fn func(ctx Ctx)) { c.node.Go(name, fn) }
func (c *simCtx) Rand() *rand.Rand                 { return c.node.env.k.Rand() }

// proc extracts the sim process from a simulated Ctx. Simulation-only
// components (for example the simulated network) use it to block callers.
func proc(ctx Ctx) *sim.Proc { return ctx.(*simCtx).p }

// Proc returns the simulation process behind a simulated Ctx. It panics if
// ctx belongs to the real environment; callers should check Kernel first.
func Proc(ctx Ctx) *sim.Proc { return proc(ctx) }

// Kernel returns the sim kernel behind a simulated Ctx, or nil if ctx
// belongs to the real environment.
func Kernel(ctx Ctx) *sim.Kernel {
	if c, ok := ctx.(*simCtx); ok {
		return c.p.Kernel()
	}
	return nil
}

type simQueue struct{ q *sim.Queue }

func (s *simQueue) Put(v any) { s.q.Put(v) }
func (s *simQueue) Close()    { s.q.Close() }
func (s *simQueue) Len() int  { return s.q.Len() }

func (s *simQueue) Get(ctx Ctx) (any, bool) { return s.q.Get(proc(ctx)) }

func (s *simQueue) GetTimeout(ctx Ctx, d time.Duration) (any, bool, bool) {
	return s.q.GetTimeout(proc(ctx), d)
}

type simFuture struct{ f *sim.Future }

func (s *simFuture) Set(v any)       { s.f.Set(v) }
func (s *simFuture) IsSet() bool     { return s.f.IsSet() }
func (s *simFuture) Get(ctx Ctx) any { return s.f.Get(proc(ctx)) }
func (s *simFuture) GetTimeout(ctx Ctx, d time.Duration) (any, bool) {
	return s.f.GetTimeout(proc(ctx), d)
}
