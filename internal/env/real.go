package env

import (
	"math/rand"
	"sync"
	"time"

	"tell/internal/trace"
)

// realEnv is the production environment: activities are goroutines, Sleep is
// time.Sleep, Work is free, queues and futures are channel/condvar based.
type realEnv struct {
	start time.Time
	tr    *trace.Recorder
	mu    sync.Mutex
	rng   *rand.Rand
}

// NewReal returns an environment backed by real goroutines and wall-clock
// time. seed initializes the (mutex-protected) random source.
func NewReal(seed int64) Full {
	return &realEnv{start: time.Now(), rng: rand.New(rand.NewSource(seed))}
}

func (e *realEnv) SetTracer(r *trace.Recorder) { e.tr = r }
func (e *realEnv) Tracer() *trace.Recorder     { return e.tr }

func (e *realEnv) Now() time.Duration { return time.Since(e.start) }

func (e *realEnv) NewNode(name string, cores int) Node {
	return &realNode{env: e, name: name, cores: cores}
}

func (e *realEnv) NewQueue() Queue   { return newRealQueue() }
func (e *realEnv) NewFuture() Future { return newRealFuture() }

type realNode struct {
	env   *realEnv
	name  string
	cores int
}

func (n *realNode) Name() string         { return n.name }
func (n *realNode) Cores() int           { return n.cores }
func (n *realNode) Utilization() float64 { return 0 }

func (n *realNode) Go(name string, fn func(ctx Ctx)) {
	go fn(&realCtx{node: n, sc: trace.Scope{R: n.env.tr}})
}

// DetachedCtx returns an execution context for synchronous calls into the
// engine from arbitrary goroutines. Only the real environment supports
// this (ok=false for simulated nodes, whose activities must be spawned
// with Node.Go so the kernel can schedule them).
func DetachedCtx(n Node) (Ctx, bool) {
	if rn, ok := n.(*realNode); ok {
		return &realCtx{node: rn, sc: trace.Scope{R: rn.env.tr}}, true
	}
	return nil, false
}

type realCtx struct {
	node *realNode
	sc   trace.Scope
}

func (c *realCtx) Node() Node                     { return c.node }
func (c *realCtx) Now() time.Duration             { return c.node.env.Now() }
func (c *realCtx) Sleep(d time.Duration)          { time.Sleep(d) }
func (c *realCtx) Work(time.Duration)             {}
func (c *realCtx) Trace() *trace.Scope            { return &c.sc }
func (c *realCtx) Go(name string, fn func(c Ctx)) { c.node.Go(name, fn) }

func (c *realCtx) Rand() *rand.Rand {
	// The shared env source is not safe for concurrent use; derive a
	// private per-call source from it under the lock.
	e := c.node.env
	e.mu.Lock()
	seed := e.rng.Int63()
	e.mu.Unlock()
	return rand.New(rand.NewSource(seed))
}

// realQueue is an unbounded FIFO built on a condition variable.
type realQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []any
	head   int
	closed bool
}

func newRealQueue() *realQueue {
	q := &realQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *realQueue) Put(v any) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.buf = append(q.buf, v)
	q.cond.Signal()
}

func (q *realQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

func (q *realQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf) - q.head
}

func (q *realQueue) pop() (any, bool) {
	if q.head < len(q.buf) {
		v := q.buf[q.head]
		q.buf[q.head] = nil
		q.head++
		if q.head == len(q.buf) {
			q.buf, q.head = q.buf[:0], 0
		}
		return v, true
	}
	return nil, false
}

func (q *realQueue) Get(ctx Ctx) (any, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if v, ok := q.pop(); ok {
			return v, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

func (q *realQueue) GetTimeout(ctx Ctx, d time.Duration) (any, bool, bool) {
	deadline := time.Now().Add(d)
	// sync.Cond has no timed wait; poll with a short interval. Timeouts in
	// this codebase guard failure detection, not hot paths.
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if v, ok := q.pop(); ok {
			return v, true, false
		}
		if q.closed {
			return nil, false, false
		}
		if time.Now().After(deadline) {
			return nil, false, true
		}
		q.mu.Unlock()
		time.Sleep(time.Millisecond)
		q.mu.Lock()
	}
}

// realFuture is a write-once value on a channel.
type realFuture struct {
	done chan struct{}
	mu   sync.Mutex
	val  any
	set  bool
}

func newRealFuture() *realFuture { return &realFuture{done: make(chan struct{})} }

func (f *realFuture) Set(v any) {
	f.mu.Lock()
	if f.set {
		f.mu.Unlock()
		panic("env: Future set twice")
	}
	f.val = v
	f.set = true
	f.mu.Unlock()
	close(f.done)
}

func (f *realFuture) IsSet() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set
}

func (f *realFuture) Get(ctx Ctx) any {
	<-f.done
	return f.val
}

func (f *realFuture) GetTimeout(ctx Ctx, d time.Duration) (any, bool) {
	select {
	case <-f.done:
		return f.val, true
	case <-time.After(d):
		return nil, false
	}
}
