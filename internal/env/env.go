// Package env abstracts the execution environment of the database: real
// goroutines and wall-clock time for production use, or the deterministic
// discrete-event simulator (internal/sim) for scalability experiments.
//
// All engine code is written against these interfaces. An activity (a
// processing-node worker, a storage-node handler, a commit-manager sync loop)
// runs on a Node and receives a Ctx, through which it sleeps, charges CPU
// work, and blocks on queues and futures. Under the real environment Work is
// free (the actual computation is the work) and Sleep is time.Sleep; under
// the simulated environment Work occupies one of the node's modelled CPU
// cores for the given virtual duration.
package env

import (
	"math/rand"
	"time"

	"tell/internal/trace"
)

// Env creates nodes and tells time.
type Env interface {
	// NewNode registers a machine with the given number of CPU cores.
	NewNode(name string, cores int) Node
	// Now returns the time elapsed since the environment started.
	Now() time.Duration
}

// Node is a machine that can host concurrent activities.
type Node interface {
	// Name returns the node's name.
	Name() string
	// Go starts a new activity on this node.
	Go(name string, fn func(ctx Ctx))
	// Cores returns the node's modelled core count.
	Cores() int
	// Utilization returns the fraction of CPU capacity used so far
	// (always 0 under the real environment).
	Utilization() float64
}

// Ctx is the execution context of one running activity. A Ctx is only valid
// within the activity it was handed to; it must not be shared across
// activities.
type Ctx interface {
	// Node returns the node this activity runs on.
	Node() Node
	// Now returns the time elapsed since the environment started.
	Now() time.Duration
	// Sleep suspends the activity for d.
	Sleep(d time.Duration)
	// Work charges d of CPU time on the node's cores. Under the real
	// environment this is a no-op.
	Work(d time.Duration)
	// Go starts a sibling activity on the same node.
	Go(name string, fn func(ctx Ctx))
	// Rand returns the environment's random source. Under simulation it
	// is deterministic per seed.
	Rand() *rand.Rand
	// Trace returns this activity's tracing scope. The pointer is always
	// non-nil and owned by the activity; Scope.R is nil when tracing is
	// disabled (every trace hook is a no-op on a nil recorder, so callers
	// never need to check).
	Trace() *trace.Scope
}

// Tracing is implemented by environments that can carry a trace recorder.
// Both Env implementations in this package do.
type Tracing interface {
	SetTracer(*trace.Recorder)
	Tracer() *trace.Recorder
}

// SetTracer installs r as e's trace recorder. Contexts created after the
// call carry the recorder in their Scope; install before spawning nodes
// and activities. A no-op for environments without tracing support.
func SetTracer(e Env, r *trace.Recorder) {
	if t, ok := e.(Tracing); ok {
		t.SetTracer(r)
	}
}

// Tracer returns e's trace recorder, or nil if none is installed.
func Tracer(e Env) *trace.Recorder {
	if t, ok := e.(Tracing); ok {
		return t.Tracer()
	}
	return nil
}

// Queue is an unbounded FIFO usable across activities. Put never blocks.
type Queue interface {
	Put(v any)
	// Get blocks until a value is available; ok is false once the queue
	// is closed and drained.
	Get(ctx Ctx) (v any, ok bool)
	// GetTimeout is like Get but gives up after d.
	GetTimeout(ctx Ctx, d time.Duration) (v any, ok, timedOut bool)
	Close()
	Len() int
}

// Future is a write-once value any number of activities can wait on.
type Future interface {
	Set(v any)
	Get(ctx Ctx) any
	// GetTimeout returns ok=false if d elapses before Set.
	GetTimeout(ctx Ctx, d time.Duration) (v any, ok bool)
	IsSet() bool
}

// Factory creates synchronization primitives bound to an environment.
// Both Env implementations in this package also implement Factory.
type Factory interface {
	NewQueue() Queue
	NewFuture() Future
}

// Full is the combination every component constructor takes.
type Full interface {
	Env
	Factory
}

// Locker is a mutual-exclusion lock that is safe to hold across blocking
// environment operations (Sleep, Queue.Get, RPCs). A sync.Mutex must never
// be held across those — under the simulator the kernel would wait forever
// for the parked process — so any critical section that blocks uses this
// token-queue lock instead.
type Locker struct {
	q Queue
}

// NewLocker creates an unlocked Locker.
func NewLocker(f Factory) *Locker {
	l := &Locker{q: f.NewQueue()}
	l.q.Put(struct{}{})
	return l
}

// Lock blocks the calling activity until the lock is available.
func (l *Locker) Lock(ctx Ctx) { l.q.Get(ctx) }

// Unlock releases the lock.
func (l *Locker) Unlock() { l.q.Put(struct{}{}) }
