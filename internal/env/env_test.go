package env_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tell/internal/env"
	"tell/internal/sim"
)

// runSim spawns fn on a fresh simulated node and runs the kernel to
// completion.
func runSim(t *testing.T, fn func(ctx env.Ctx, e env.Full)) {
	t.Helper()
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	n := e.NewNode("n1", 4)
	n.Go("test", func(ctx env.Ctx) { fn(ctx, e) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
}

func TestSimSleepIsVirtual(t *testing.T) {
	start := time.Now()
	runSim(t, func(ctx env.Ctx, e env.Full) {
		ctx.Sleep(10 * time.Hour)
		if ctx.Now() != 10*time.Hour {
			t.Errorf("Now = %v, want 10h", ctx.Now())
		}
	})
	if real := time.Since(start); real > time.Second {
		t.Fatalf("simulated 10h took %v of real time", real)
	}
}

func TestSimWorkOccupiesCores(t *testing.T) {
	// 8 activities charging 10ms each on a 4-core node take 20ms.
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	n := e.NewNode("n1", 4)
	for i := 0; i < 8; i++ {
		n.Go("w", func(ctx env.Ctx) { ctx.Work(10 * time.Millisecond) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Now(); got != 20*time.Millisecond {
		t.Fatalf("elapsed = %v, want 20ms", got)
	}
	k.Shutdown()
}

func TestSimQueueAcrossNodes(t *testing.T) {
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	q := e.NewQueue()
	a := e.NewNode("a", 1)
	b := e.NewNode("b", 1)
	got := 0
	b.Go("consumer", func(ctx env.Ctx) {
		v, ok := q.Get(ctx)
		if ok {
			got = v.(int)
		}
	})
	a.Go("producer", func(ctx env.Ctx) {
		ctx.Sleep(time.Millisecond)
		q.Put(42)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	k.Shutdown()
}

func TestRealEnvBasics(t *testing.T) {
	e := env.NewReal(7)
	n := e.NewNode("n1", 2)
	if n.Name() != "n1" || n.Cores() != 2 {
		t.Fatalf("node metadata wrong: %q %d", n.Name(), n.Cores())
	}
	var wg sync.WaitGroup
	var count atomic.Int32
	wg.Add(3)
	for i := 0; i < 3; i++ {
		n.Go("w", func(ctx env.Ctx) {
			defer wg.Done()
			ctx.Work(time.Hour) // free under the real env
			ctx.Sleep(time.Millisecond)
			count.Add(1)
		})
	}
	wg.Wait()
	if count.Load() != 3 {
		t.Fatalf("count = %d, want 3", count.Load())
	}
}

func TestRealQueue(t *testing.T) {
	e := env.NewReal(7)
	n := e.NewNode("n1", 1)
	q := e.NewQueue()
	done := make(chan int, 3)
	n.Go("c", func(ctx env.Ctx) {
		for {
			v, ok := q.Get(ctx)
			if !ok {
				close(done)
				return
			}
			done <- v.(int)
		}
	})
	q.Put(1)
	q.Put(2)
	if got := <-done; got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
	if got := <-done; got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	q.Close()
	if _, ok := <-done; ok {
		t.Fatal("expected closed channel after queue close")
	}
}

func TestRealQueueTimeout(t *testing.T) {
	e := env.NewReal(7)
	n := e.NewNode("n1", 1)
	q := e.NewQueue()
	res := make(chan bool, 1)
	n.Go("c", func(ctx env.Ctx) {
		_, _, timedOut := q.GetTimeout(ctx, 10*time.Millisecond)
		res <- timedOut
	})
	if !<-res {
		t.Fatal("expected timeout")
	}
}

func TestRealFuture(t *testing.T) {
	e := env.NewReal(7)
	n := e.NewNode("n1", 1)
	f := e.NewFuture()
	res := make(chan any, 1)
	n.Go("w", func(ctx env.Ctx) { res <- f.Get(ctx) })
	time.Sleep(5 * time.Millisecond)
	f.Set("hello")
	if got := <-res; got != "hello" {
		t.Fatalf("got %v", got)
	}
	if !f.IsSet() {
		t.Fatal("IsSet should be true")
	}
}

func TestRealFutureTimeout(t *testing.T) {
	e := env.NewReal(7)
	n := e.NewNode("n1", 1)
	f := e.NewFuture()
	res := make(chan bool, 1)
	n.Go("w", func(ctx env.Ctx) {
		_, ok := f.GetTimeout(ctx, 5*time.Millisecond)
		res <- ok
	})
	if <-res {
		t.Fatal("expected timeout")
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []int64 {
		k := sim.NewKernel(99)
		e := env.NewSim(k)
		n := e.NewNode("n", 2)
		var trace []int64
		for i := 0; i < 4; i++ {
			n.Go("w", func(ctx env.Ctx) {
				for j := 0; j < 10; j++ {
					ctx.Work(time.Duration(ctx.Rand().Intn(100)) * time.Microsecond)
					trace = append(trace, int64(ctx.Now()))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		k.Shutdown()
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestLockerMutualExclusionSim(t *testing.T) {
	k := sim.NewKernel(1)
	e := env.NewSim(k)
	n := e.NewNode("n", 2)
	l := env.NewLocker(e)
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		n.Go("w", func(ctx env.Ctx) {
			l.Lock(ctx)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			// Hold across a blocking operation — the forbidden pattern
			// for sync.Mutex, the reason Locker exists.
			ctx.Sleep(time.Millisecond)
			inside--
			l.Unlock()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("critical section overlapped: %d", maxInside)
	}
	if k.Now().Duration() < 5*time.Millisecond {
		t.Fatalf("sections did not serialize: %v", k.Now().Duration())
	}
	k.Shutdown()
}

func TestLockerRealEnv(t *testing.T) {
	e := env.NewReal(1)
	n := e.NewNode("n", 2)
	l := env.NewLocker(e)
	var mu sync.Mutex
	inside, maxInside := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		n.Go("w", func(ctx env.Ctx) {
			defer wg.Done()
			l.Lock(ctx)
			mu.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			mu.Unlock()
			ctx.Sleep(time.Millisecond)
			mu.Lock()
			inside--
			mu.Unlock()
			l.Unlock()
		})
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("critical section overlapped: %d", maxInside)
	}
}
