package voltlike_test

import (
	"fmt"
	"testing"
	"time"

	"tell/internal/baseline"
	"tell/internal/env"
	"tell/internal/sim"
	"tell/internal/testutil"
	"tell/internal/tpcc"
	"tell/internal/voltlike"
)

// runMix executes the driver against a voltlike cluster and returns the
// result.
func runMix(t *testing.T, mix tpcc.Mix, nodes, terminals, txns int, cfg tpcc.Config) *tpcc.Result {
	t.Helper()
	k := sim.NewKernel(testutil.Seed(t, 13))
	envr := env.NewSim(k)
	ds := baseline.NewDataset(cfg)
	var enodes []env.Node
	for i := 0; i < nodes; i++ {
		enodes = append(enodes, envr.NewNode(fmt.Sprintf("volt%d", i), 8))
	}
	eng := voltlike.New(voltlike.Config{}, envr, ds, enodes)
	drv := tpcc.NewDriver(cfg, mix, []tpcc.Engine{eng}, terminals, 9)
	driver := envr.NewNode("driver", 4)
	var res *tpcc.Result
	driver.Go("drv", func(ctx env.Ctx) {
		defer k.Stop()
		res = drv.Run(ctx, envr, driver, 20, txns)
	})
	if err := k.RunUntil(sim.Time(30000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if res == nil {
		t.Fatal("driver did not finish")
	}
	return res
}

func TestVoltlikeRunsStandardMix(t *testing.T) {
	cfg := tpcc.Config{Warehouses: 12, Scale: 0.02, Seed: 3}
	res := runMix(t, tpcc.StandardMix(), 2, 24, 400, cfg)
	if res.TotalCommitted() == 0 || res.TpmC() <= 0 {
		t.Fatalf("no throughput: %v", res)
	}
	// Serial partitions never produce concurrency aborts; the only
	// rollbacks are the ~1% invalid-item new-orders.
	if res.AbortRate() > 0.03 {
		t.Fatalf("abort rate %.3f", res.AbortRate())
	}
}

func TestVoltlikeShardableBeatsStandard(t *testing.T) {
	// The defining behaviour (Figures 8/9): without cross-partition
	// transactions voltlike flies; with them it stalls.
	cfg := tpcc.Config{Warehouses: 12, Scale: 0.02, Seed: 3}
	std := runMix(t, tpcc.StandardMix(), 3, 36, 500, cfg)
	shard := runMix(t, tpcc.ShardableMix(), 3, 36, 500, cfg)
	if shard.TpmC() <= std.TpmC() {
		t.Fatalf("shardable (%.0f) must beat standard (%.0f)", shard.TpmC(), std.TpmC())
	}
	t.Logf("standard=%.0f shardable=%.0f TpmC (×%.1f)",
		std.TpmC(), shard.TpmC(), shard.TpmC()/std.TpmC())
}

func TestVoltlikeConsistencyPreserved(t *testing.T) {
	k := sim.NewKernel(testutil.Seed(t, 17))
	envr := env.NewSim(k)
	cfg := tpcc.Config{Warehouses: 4, Scale: 0.02, Seed: 5}
	ds := baseline.NewDataset(cfg)
	nodes := []env.Node{envr.NewNode("v0", 8), envr.NewNode("v1", 8)}
	eng := voltlike.New(voltlike.Config{}, envr, ds, nodes)
	drv := tpcc.NewDriver(cfg, tpcc.StandardMix(), []tpcc.Engine{eng}, 16, 2)
	driver := envr.NewNode("driver", 4)
	driver.Go("drv", func(ctx env.Ctx) {
		defer k.Stop()
		drv.Run(ctx, envr, driver, 0, 600)
	})
	if err := k.RunUntil(sim.Time(30000 * time.Second)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	// Despite concurrent terminals and cross-partition transactions, the
	// serial/stall discipline must keep the order books consistent.
	for _, wh := range ds.Warehouses {
		for _, d := range wh.Districts {
			var maxO int64
			for o := range d.Orders {
				if o > maxO {
					maxO = o
				}
			}
			if d.NextO != maxO+1 {
				t.Fatalf("w%d d%d: nextO=%d maxO=%d", wh.W, d.ID, d.NextO, maxO)
			}
		}
	}
	single, multi := eng.Stats()
	if single == 0 || multi == 0 {
		t.Fatalf("expected both kinds: single=%d multi=%d", single, multi)
	}
}
