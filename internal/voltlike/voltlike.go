// Package voltlike implements the VoltDB-style comparison system of §6.4:
// a shared-nothing, partition-per-core in-memory database that executes
// transactions serially within each partition without any concurrency
// control. Single-partition transactions are extremely cheap; transactions
// spanning partitions must stall every involved partition for the duration
// of a globally coordinated execution — the effect that makes the standard
// TPC-C mix (≈11% cross-partition) collapse as nodes are added, and the
// shardable variant excel (Figures 8 and 9).
package voltlike

import (
	"sort"
	"sync"
	"time"

	"tell/internal/baseline"
	"tell/internal/env"
	"tell/internal/tpcc"
	"tell/internal/trace"
)

// Costs model the per-transaction CPU and coordination parameters.
type Costs struct {
	// PerRow is the CPU per logical row access inside a stored procedure
	// (no locking, no buffer manager: very low, the VoltDB pitch).
	PerRow time.Duration
	// ProcOverhead is the fixed cost per procedure invocation on its
	// partition: invocation dispatch, plan cache, and the amortized
	// synchronous command log (VoltDB 4.x sustained a few thousand
	// single-partition transactions per second per partition).
	ProcOverhead time.Duration
	// NetLatency is the one-way network latency between nodes. VoltDB
	// ran over TCP/IP on the InfiniBand fabric (§6.4), so this is the
	// kernel-stack latency, not RDMA.
	NetLatency time.Duration
	// ReplicationRTT is charged per write transaction per replica
	// (K-factor synchronous replication).
	ReplicationRTT time.Duration
	// MultiPartitionOverhead is the fixed cost of one globally ordered
	// multi-partition transaction (coordinator round trips, the MPI
	// barrier, command logging). VoltDB 4.x processed multi-partition
	// work at a few hundred per second cluster-wide — the millisecond
	// scale here — which is why ~11% cross-partition transactions cap
	// the standard mix (§6.4, Table 4's 706ms VoltDB latencies).
	MultiPartitionOverhead time.Duration
}

// DefaultCosts returns calibrated parameters.
func DefaultCosts() Costs {
	return Costs{
		PerRow:                 500 * time.Nanosecond,
		ProcOverhead:           300 * time.Microsecond,
		NetLatency:             40 * time.Microsecond,
		ReplicationRTT:         90 * time.Microsecond,
		MultiPartitionOverhead: 3 * time.Millisecond,
	}
}

// Config assembles an engine.
type Config struct {
	// Partitions is the total partition count (the paper used 6 per
	// 8-core node).
	Partitions int
	// ReplicationFactor is the K-factor plus one (RF1 = no replicas).
	ReplicationFactor int
	Costs             Costs
}

// Engine is a VoltDB-style cluster over a native TPC-C dataset.
type Engine struct {
	cfg   Config
	envr  env.Full
	ds    *baseline.Dataset
	parts []*partition

	// multi serializes cross-partition transactions: VoltDB establishes
	// a global order for them. It is held across blocking operations, so
	// it must be an env.Locker, never a sync.Mutex.
	multi *env.Locker

	mu       sync.Mutex
	singleTx uint64
	multiTx  uint64
}

// partition is one serial execution engine.
type partition struct {
	id   int
	eng  *Engine
	node env.Node
	jobs env.Queue
}

// partitionJob is one unit of serial work. sc/enq carry the submitting
// transaction's tracing scope so the executor's work is attributed to it
// and its queue wait is measured.
type partitionJob struct {
	fn   func(ctx env.Ctx)
	done env.Future
	sc   trace.Scope
	enq  time.Duration
}

// New builds the engine: partitions spread over nodes (6 per node, as the
// paper configured), each running one serial executor.
func New(cfg Config, envr env.Full, ds *baseline.Dataset, nodes []env.Node) *Engine {
	if cfg.Partitions <= 0 {
		cfg.Partitions = len(nodes) * 6
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	e := &Engine{cfg: cfg, envr: envr, ds: ds, multi: env.NewLocker(envr)}
	for i := 0; i < cfg.Partitions; i++ {
		p := &partition{id: i, eng: e, node: nodes[i%len(nodes)], jobs: envr.NewQueue()}
		e.parts = append(e.parts, p)
		p.node.Go("executor", p.run)
	}
	return e
}

// Stats returns (single-partition, multi-partition) transaction counts.
func (e *Engine) Stats() (single, multi uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.singleTx, e.multiTx
}

// partitionOf maps a warehouse to its owning partition.
func (e *Engine) partitionOf(w int) *partition {
	return e.parts[w%len(e.parts)]
}

func (p *partition) run(ctx env.Ctx) {
	sc := ctx.Trace()
	for {
		v, ok := p.jobs.Get(ctx)
		if !ok {
			return
		}
		j := v.(*partitionJob)
		if j.sc.R != nil {
			saved := *sc
			*sc = j.sc
			j.sc.Agg.Add(trace.CompPoolWait, ctx.Now()-j.enq)
			j.fn(ctx)
			*sc = saved
		} else {
			j.fn(ctx)
		}
		j.done.Set(nil)
	}
}

// submit runs fn serially on the partition and waits.
func (p *partition) submit(ctx env.Ctx, fn func(ctx env.Ctx)) {
	j := &partitionJob{fn: fn, done: p.eng.envr.NewFuture()}
	if sc := ctx.Trace(); sc.R != nil {
		j.sc = *sc
		j.enq = ctx.Now()
	}
	p.jobs.Put(j)
	j.done.Get(ctx)
}

// exec routes one transaction. Single-partition: enqueue the procedure on
// the owning partition. Multi-partition: take the global coordination lock,
// stall every involved partition, execute, release.
func (e *Engine) exec(ctx env.Ctx, warehouses []int, writes bool, fn func(ctx env.Ctx) bool) (bool, error) {
	parts := e.partitionsFor(warehouses)
	c := e.cfg.Costs
	if len(parts) == 1 {
		e.mu.Lock()
		e.singleTx++
		e.mu.Unlock()
		p := parts[0]
		// Client → partition network hop.
		baseline.SleepNet(ctx, c.NetLatency)
		var ok bool
		p.submit(ctx, func(pctx env.Ctx) {
			pctx.Work(c.ProcOverhead)
			ok = fn(pctx)
			if ok && writes {
				e.replicate(pctx)
			}
		})
		baseline.SleepNet(ctx, c.NetLatency)
		return ok, nil
	}

	// Multi-partition: globally ordered, and — as in VoltDB's MPI — the
	// transaction executes as a barrier across EVERY partition of the
	// cluster, not just the partitions it touches: the global serial
	// order must hold everywhere.
	e.mu.Lock()
	e.multiTx++
	e.mu.Unlock()
	lockStart := ctx.Now()
	e.multi.Lock(ctx)
	baseline.Charge(ctx, trace.CompConflict, ctx.Now()-lockStart)
	defer e.multi.Unlock()

	all := e.parts
	release := e.envr.NewFuture()
	arrived := make([]env.Future, len(all))
	for i, p := range all {
		i, p := i, p
		arrived[i] = e.envr.NewFuture()
		// The stall job parks the executor: no other transaction can
		// run on this partition while the coordinator works.
		p.jobs.Put(&partitionJob{
			fn: func(pctx env.Ctx) {
				arrived[i].Set(nil)
				release.Get(pctx)
			},
			done: e.envr.NewFuture(),
		})
	}
	// Coordinator: one network round per partition to acquire.
	for range all {
		baseline.SleepNet(ctx, c.NetLatency)
	}
	stallStart := ctx.Now()
	for _, a := range arrived {
		a.Get(ctx)
	}
	baseline.Charge(ctx, trace.CompRemote, ctx.Now()-stallStart)
	// All partitions stalled: safe to touch their state directly.
	baseline.SleepRemote(ctx, c.MultiPartitionOverhead)
	ctx.Work(c.ProcOverhead * time.Duration(len(parts)))
	ok := fn(ctx)
	if ok && writes {
		e.replicate(ctx)
	}
	// Release (one hop per partition).
	for range all {
		baseline.SleepNet(ctx, c.NetLatency)
	}
	release.Set(nil)
	return ok, nil
}

// replicate charges the synchronous K-safety replication round trips.
func (e *Engine) replicate(ctx env.Ctx) {
	for r := 1; r < e.cfg.ReplicationFactor; r++ {
		baseline.SleepNet(ctx, e.cfg.Costs.ReplicationRTT)
	}
}

func (e *Engine) partitionsFor(warehouses []int) []*partition {
	seen := make(map[int]*partition)
	for _, w := range warehouses {
		p := e.partitionOf(w)
		seen[p.id] = p
	}
	out := make([]*partition, 0, len(seen))
	for _, p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// chargeRows accounts per-row CPU on the executing context.
func (e *Engine) chargeRows(ctx env.Ctx, res *baseline.Result) {
	r, w := res.RowAccessCount()
	ctx.Work(time.Duration(r+w) * e.cfg.Costs.PerRow)
}

// --- tpcc.Engine implementation ---

// NewOrder runs the new-order procedure.
func (e *Engine) NewOrder(ctx env.Ctx, in *tpcc.NewOrderInput) (bool, error) {
	ws := baseline.WarehousesOf(tpcc.TxNewOrder, in)
	return e.exec(ctx, ws, true, func(pctx env.Ctx) bool {
		res := baseline.NewOrder(e.ds, in)
		e.chargeRows(pctx, &res)
		return res.OK
	})
}

// Payment runs the payment procedure.
func (e *Engine) Payment(ctx env.Ctx, in *tpcc.PaymentInput) (bool, error) {
	ws := baseline.WarehousesOf(tpcc.TxPayment, in)
	return e.exec(ctx, ws, true, func(pctx env.Ctx) bool {
		res := baseline.Payment(e.ds, in)
		e.chargeRows(pctx, &res)
		return res.OK
	})
}

// OrderStatus runs the order-status procedure.
func (e *Engine) OrderStatus(ctx env.Ctx, in *tpcc.OrderStatusInput) (bool, error) {
	ws := baseline.WarehousesOf(tpcc.TxOrderStatus, in)
	return e.exec(ctx, ws, false, func(pctx env.Ctx) bool {
		res := baseline.OrderStatus(e.ds, in)
		e.chargeRows(pctx, &res)
		return res.OK
	})
}

// Delivery runs the delivery procedure.
func (e *Engine) Delivery(ctx env.Ctx, in *tpcc.DeliveryInput) (bool, error) {
	ws := baseline.WarehousesOf(tpcc.TxDelivery, in)
	return e.exec(ctx, ws, true, func(pctx env.Ctx) bool {
		res := baseline.Delivery(e.ds, in)
		e.chargeRows(pctx, &res)
		return res.OK
	})
}

// StockLevel runs the stock-level procedure.
func (e *Engine) StockLevel(ctx env.Ctx, in *tpcc.StockLevelInput) (bool, error) {
	ws := baseline.WarehousesOf(tpcc.TxStockLevel, in)
	return e.exec(ctx, ws, false, func(pctx env.Ctx) bool {
		res := baseline.StockLevel(e.ds, in)
		e.chargeRows(pctx, &res)
		return res.OK
	})
}
