// Package tell is a distributed shared-data SQL-style database: a Go
// implementation of the system described in "On the Design and Scalability
// of Distributed Shared-Data Databases" (Loesing, Pilman, Etter, Kossmann;
// SIGMOD 2015).
//
// The architecture decouples transactional query processing from data
// storage: autonomous processing nodes (PNs) execute ACID transactions
// under distributed snapshot isolation against a shared in-memory record
// store, detecting write-write conflicts with load-link/store-conditional
// operations instead of locks. Any PN can run any transaction — there is
// no partitioning visible to the application — so processing and storage
// scale out independently and elastically.
//
// This package is the embedded public API: it assembles a complete cluster
// (storage nodes, commit managers, processing nodes, management nodes)
// inside the current process on real goroutines. The internal packages also
// run the identical engine on a deterministic discrete-event simulator
// (used by the benchmark harness, see DESIGN.md) and over TCP (cmd/telld).
//
// Quick start:
//
//	cluster, _ := tell.Start(tell.Options{StorageNodes: 3, ReplicationFactor: 2})
//	defer cluster.Close()
//	db, _ := cluster.NewProcessingNode("pn1")
//	db.CreateTable(&tell.Schema{ ... })
//	tx, _ := db.Begin()
//	rid, _ := tx.Insert(table, tell.Row{tell.I64(1), tell.Str("hello")})
//	tx.Commit()
package tell

import (
	"errors"
	"fmt"
	"io"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/obs"
	"tell/internal/recovery"
	"tell/internal/relational"
	"tell/internal/sanitize"
	"tell/internal/store"
	"tell/internal/trace"
	"tell/internal/transport"
)

// Re-exported schema and value types.
type (
	// Schema describes a table: columns, primary key, secondary indexes.
	Schema = relational.TableSchema
	// Column is one table column.
	Column = relational.Column
	// Index describes a secondary index over column positions.
	Index = relational.IndexSchema
	// Row is one tuple, positionally matching the schema's columns.
	Row = relational.Row
	// Value is one typed column value.
	Value = relational.Value
)

// Column types.
const (
	TInt64   = relational.TInt64
	TFloat64 = relational.TFloat64
	TString  = relational.TString
	TBytes   = relational.TBytes
	TBool    = relational.TBool
)

// Value constructors.
var (
	I64   = relational.I64
	F64   = relational.F64
	Str   = relational.Str
	Bytes = relational.Bytes
	Bool  = relational.BoolV
	Null  = relational.Null
)

// Errors surfaced by the transaction API.
var (
	// ErrConflict: the transaction lost a write-write conflict and was
	// rolled back; retry it.
	ErrConflict = core.ErrConflict
	// ErrDuplicateKey: a primary-key violation aborted the commit.
	ErrDuplicateKey = core.ErrDuplicateKey
	// ErrTxnDone: the transaction already committed or aborted.
	ErrTxnDone = core.ErrTxnDone
)

// Options configure an embedded cluster.
type Options struct {
	// StorageNodes is the number of storage nodes (default 3).
	StorageNodes int
	// ReplicationFactor is the number of copies per record, master
	// included (default 1).
	ReplicationFactor int
	// CommitManagers is the size of the commit-manager fleet (default 1).
	CommitManagers int
	// Seed drives internal randomness (default 1).
	Seed int64
	// Telemetry enables the windowed telemetry pipeline: per-range heat
	// tracking on every storage node and handler-latency series, readable
	// via Cluster.HeatRows and Cluster.WriteMetrics. Off by default — the
	// disabled path costs nothing on the hot paths.
	Telemetry bool
}

func (o *Options) fill() {
	if o.StorageNodes <= 0 {
		o.StorageNodes = 3
	}
	if o.ReplicationFactor <= 0 {
		o.ReplicationFactor = 1
	}
	if o.CommitManagers <= 0 {
		o.CommitManagers = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Cluster is an embedded shared-data database cluster.
type Cluster struct {
	envr    env.Full
	net     *transport.LocalNet
	storage *store.Cluster
	cms     []*commitmgr.Server
	cmAddrs []string
	pnMgr   *recovery.Manager
	obs     *obs.Pipeline // nil unless Options.Telemetry

	mu     sanitize.Mutex
	dbs    map[string]*DB
	closed bool
}

// Start assembles and starts an embedded cluster.
func Start(opts Options) (*Cluster, error) {
	opts.fill()
	envr := env.NewReal(opts.Seed)
	net := transport.NewLocalNet()
	storage, err := store.NewCluster(envr, net, store.ClusterConfig{
		NumNodes:          opts.StorageNodes,
		ReplicationFactor: opts.ReplicationFactor,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		envr:    envr,
		net:     net,
		storage: storage,
		dbs:     make(map[string]*DB),
	}
	c.mu.SetName("tell.Cluster.mu")
	if opts.Telemetry {
		// Counters-only tracer feeding the flight recorder's tap plus the
		// windowed pipeline; every storage node gets a heat tracker.
		rec := trace.NewCounters(envr.Now)
		env.SetTracer(envr, rec)
		c.obs = obs.New(obs.Config{AdaptiveOutliers: true}, envr.Now)
		rec.SetTap(c.obs.Flight())
		for _, addr := range storage.Addrs() {
			storage.Node(addr).SetObs(c.obs)
		}
	}
	var ids []string
	for i := 0; i < opts.CommitManagers; i++ {
		ids = append(ids, fmt.Sprintf("cm%d", i))
	}
	for _, id := range ids {
		node := envr.NewNode(id, 2)
		cm := commitmgr.New(id, id, envr, node, net, storage.NewClient(node))
		cm.Peers = ids
		cm.SetObs(c.obs)
		if err := cm.Start(); err != nil {
			return nil, err
		}
		c.cms = append(c.cms, cm)
		c.cmAddrs = append(c.cmAddrs, id)
	}
	mgmtNode := envr.NewNode("pn-mgmt", 2)
	c.pnMgr = recovery.NewManager(envr, mgmtNode, net, storage.NewClient(mgmtNode),
		commitmgr.NewClient(envr, mgmtNode, net, c.cmAddrs))
	c.pnMgr.Start()
	// Migration cutovers sample the commit managers' snapshot boundary; in
	// the embedded assembly the servers are in-process, so read it directly.
	cms := c.cms
	storage.Manager.Fence = func(env.Ctx) uint64 {
		var lav uint64
		for i, cm := range cms {
			if v := cm.Lav(); i == 0 || v < lav {
				lav = v
			}
		}
		return lav
	}
	return c, nil
}

// AddStorageNode adds a fresh, empty storage node to the running cluster —
// the storage-side elastic scale-out. The node serves immediately but
// masters nothing until Rebalance (or the autonomic rebalancer) migrates
// ranges onto it.
func (c *Cluster) AddStorageNode(addr string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("tell: cluster closed")
	}
	c.mu.Unlock()
	sn, err := c.storage.AddStorageNode(addr)
	if err != nil {
		return err
	}
	if c.obs != nil {
		sn.SetObs(c.obs)
	}
	return nil
}

// Rebalance runs forced placement passes — live range migrations under
// traffic — until the cluster's load view is balanced, and returns how many
// split/migrate actions ran. Transactions keep executing throughout; ones
// caught mid-cutover retry transparently on the new partition map.
func (c *Cluster) Rebalance() (int, error) {
	ctx, ok := env.DetachedCtx(c.storage.Manager.Node())
	if !ok {
		return 0, errors.New("tell: rebalance requires the real environment")
	}
	pol := store.DefaultRebalancePolicy()
	moves := 0
	best := 1.0
	stall := 0
	for moves < 64 {
		acted, err := c.storage.Manager.RebalanceOnce(ctx)
		if err != nil {
			return moves, err
		}
		if !acted {
			return moves, nil
		}
		moves++
		// Convergence at the achievable granularity: some hotspots (an
		// append-frontier log range, a single mega-hot key) cannot be
		// spread by any split or migration, so the policy ratio may never
		// be met. Stop once several consecutive actions fail to reduce the
		// hottest node's share of total load.
		if share := c.storage.Manager.HotShare(); share < best-0.01 {
			best, stall = share, 0
		} else if stall++; stall >= 4 {
			return moves, nil
		}
		// The controller ranks ranges by ops since its previous pass, so
		// give live traffic one policy interval to land before planning the
		// next action — back-to-back passes would see an empty delta and
		// fall back to count balancing.
		ctx.Sleep(pol.Interval)
	}
	return moves, nil
}

// Close shuts the cluster down. In-flight transactions may fail.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, cm := range c.cms {
		cm.Stop()
	}
	c.pnMgr.Stop()
	c.storage.Manager.Stop()
	for _, db := range c.dbs {
		db.pn.Stop()
		db.pn.Store().Close()
	}
}

// HeatRow is one (storage node, partition range) activity row from the
// telemetry pipeline: all-time operation totals plus activity over the
// recent retention horizon — the feed a placement controller uses to spot
// hot ranges.
type HeatRow struct {
	Node       string
	Range      uint64
	Reads      int64
	Writes     int64
	Conflicts  int64
	ReadBytes  int64
	WriteBytes int64
	// RecentOps and RecentLat cover the retained window horizon only.
	RecentOps int64
	RecentLat time.Duration
}

// HeatRows returns the cluster-wide per-range heatmap, hottest (most
// recently active) ranges first. Empty unless Options.Telemetry is set.
func (c *Cluster) HeatRows() []HeatRow {
	rows := c.obs.HeatRows()
	if len(rows) == 0 {
		return nil
	}
	obs.SortHeatByRecent(rows)
	out := make([]HeatRow, len(rows))
	for i, r := range rows {
		out[i] = HeatRow{
			Node:       r.Node,
			Range:      r.Range,
			Reads:      r.Total.Reads,
			Writes:     r.Total.Writes,
			Conflicts:  r.Total.Conflicts,
			ReadBytes:  r.Total.ReadBytes,
			WriteBytes: r.Total.WriteBytes,
			RecentOps:  r.Recent.Ops(),
			RecentLat:  r.Recent.MeanLat(),
		}
	}
	return out
}

// WriteMetrics writes the cluster's telemetry in Prometheus text format
// (latency series, heat gauges, SLO breach counters, flight-recorder
// state). A no-op unless Options.Telemetry is set.
func (c *Cluster) WriteMetrics(w io.Writer) error {
	if c.obs == nil {
		return nil
	}
	return c.obs.WritePrometheus(w, c.obs.Now())
}

// NewProcessingNode adds a processing node to the cluster — the elastic
// scale-out operation of the shared-data architecture: the new node can
// immediately execute any transaction on all data, with no repartitioning.
func (c *Cluster) NewProcessingNode(id string) (*DB, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("tell: cluster closed")
	}
	if _, ok := c.dbs[id]; ok {
		return nil, fmt.Errorf("tell: processing node %q exists", id)
	}
	node := c.envr.NewNode(id, 4)
	pn := core.New(core.Config{ID: id}, c.envr, node, c.net,
		c.storage.NewClient(node),
		commitmgr.NewClient(c.envr, node, c.net, c.cmAddrs))
	if err := pn.Serve(c.net); err != nil {
		return nil, err
	}
	c.pnMgr.Watch(id)
	ctx, _ := env.DetachedCtx(node)
	db := &DB{cluster: c, pn: pn, ctx: ctx}
	c.dbs[id] = db
	return db, nil
}

// DB is the handle to one processing node.
type DB struct {
	cluster *Cluster
	pn      *core.PN
	ctx     env.Ctx
}

// Table is an opened table handle.
type Table struct {
	info *core.TableInfo
}

// Name returns the table name.
func (t *Table) Name() string { return t.info.Schema.Name }

// Schema returns the table definition.
func (t *Table) Schema() *Schema { return t.info.Schema }

// CreateTable registers a table in the shared catalog (idempotent across
// processing nodes: the first creator wins, others open it).
func (db *DB) CreateTable(s *Schema) (*Table, error) {
	info, err := db.pn.Catalog().CreateTable(db.ctx, s)
	if err != nil {
		return nil, err
	}
	return &Table{info: info}, nil
}

// OpenTable opens an existing table.
func (db *DB) OpenTable(name string) (*Table, error) {
	info, err := db.pn.Catalog().OpenTable(db.ctx, name)
	if err != nil {
		return nil, err
	}
	return &Table{info: info}, nil
}

// Begin starts a transaction under snapshot isolation.
func (db *DB) Begin() (*Tx, error) {
	txn, err := db.pn.Begin(db.ctx)
	if err != nil {
		return nil, err
	}
	return &Tx{inner: txn, ctx: db.ctx}, nil
}

// Transact runs fn in a transaction, retrying write-write conflicts with
// randomized exponential backoff. fn returning an error aborts the
// transaction.
func (db *DB) Transact(fn func(tx *Tx) error) error {
	const attempts = 32
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			// Randomized backoff keeps two hot writers from re-colliding
			// in lockstep.
			backoff := time.Duration(1+db.ctx.Rand().Intn(1<<uint(min(attempt, 8)))) * 100 * time.Microsecond
			db.ctx.Sleep(backoff)
		}
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		if err := fn(tx); err != nil {
			if tx.inner.State() == core.StateRunning {
				tx.Abort()
			}
			if err == ErrConflict {
				continue
			}
			return err
		}
		switch err := tx.Commit(); err {
		case nil:
			return nil
		case ErrConflict:
			continue
		default:
			return err
		}
	}
	return ErrConflict
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Stats returns the node's (commits, aborts).
func (db *DB) Stats() (commits, aborts uint64) { return db.pn.Stats() }

// Tx is one transaction.
type Tx struct {
	inner *core.Txn
	ctx   env.Ctx
}

// Read returns the row with the given record id.
func (tx *Tx) Read(t *Table, rid uint64) (Row, bool, error) {
	return tx.inner.Read(tx.ctx, t.info, rid)
}

// Get looks a row up by primary key.
func (tx *Tx) Get(t *Table, pk ...Value) (rid uint64, row Row, found bool, err error) {
	return tx.inner.LookupPK(tx.ctx, t.info, pk...)
}

// Insert adds a row and returns its record id.
func (tx *Tx) Insert(t *Table, row Row) (uint64, error) {
	return tx.inner.Insert(tx.ctx, t.info, row)
}

// Update replaces the row with the given record id.
func (tx *Tx) Update(t *Table, rid uint64, row Row) (found bool, err error) {
	return tx.inner.Update(tx.ctx, t.info, rid, row)
}

// Delete removes the row with the given record id.
func (tx *Tx) Delete(t *Table, rid uint64) (found bool, err error) {
	return tx.inner.Delete(tx.ctx, t.info, rid)
}

// Entry is one row yielded by a scan.
type Entry struct {
	Rid uint64
	Row Row
}

// ScanPK visits rows with lo <= primary key < hi in key order; nil hi means
// unbounded. fn returning false stops the scan.
func (tx *Tx) ScanPK(t *Table, lo, hi []Value, fn func(e Entry) bool) error {
	return tx.inner.ScanPK(tx.ctx, t.info, lo, hi, func(e core.IndexEntry) bool {
		return fn(Entry{Rid: e.Rid, Row: e.Row})
	})
}

// ScanIndex visits rows via a secondary index within [lo, hi).
func (tx *Tx) ScanIndex(t *Table, index string, lo, hi []Value, fn func(e Entry) bool) error {
	return tx.inner.ScanIndex(tx.ctx, t.info, index, lo, hi, func(e core.IndexEntry) bool {
		return fn(Entry{Rid: e.Rid, Row: e.Row})
	})
}

// ScanIndexPrefix visits rows whose indexed columns equal prefix.
func (tx *Tx) ScanIndexPrefix(t *Table, index string, prefix []Value, fn func(e Entry) bool) error {
	return tx.inner.ScanIndexPrefix(tx.ctx, t.info, index, prefix, func(e core.IndexEntry) bool {
		return fn(Entry{Rid: e.Rid, Row: e.Row})
	})
}

// ScanTable streams every visible row of the table — the analytical
// full-scan path; it can run on a dedicated PN against live data (the
// paper's mixed-workload scenario).
func (tx *Tx) ScanTable(t *Table, fn func(rid uint64, row Row) bool) error {
	return tx.inner.ScanTable(tx.ctx, t.info, fn)
}

// Commit finishes the transaction; ErrConflict means a write-write conflict
// rolled it back.
func (tx *Tx) Commit() error { return tx.inner.Commit(tx.ctx) }

// Abort rolls the transaction back.
func (tx *Tx) Abort() error { return tx.inner.Abort(tx.ctx) }

// CmpOp is a comparison operator for push-down predicates.
type CmpOp = store.CmpOp

// Push-down comparison operators.
const (
	EQ = store.CmpEQ
	NE = store.CmpNE
	LT = store.CmpLT
	LE = store.CmpLE
	GT = store.CmpGT
	GE = store.CmpGE
)

// ScanTableWhere runs an analytical scan with the selection predicate
// (column col compared against val) and projection (column positions; nil =
// all) evaluated inside the storage nodes, so only matching projected rows
// cross the network — the paper's §5.2 push-down direction for mixed
// workloads. Rows passed to fn follow the projected column order.
func (tx *Tx) ScanTableWhere(t *Table, col int, op CmpOp, val Value, proj []int, fn func(rid uint64, row Row) bool) error {
	pred := &store.Predicate{Col: col, Op: op, Val: val}
	return tx.inner.ScanTableFiltered(tx.ctx, t.info, pred, proj, fn)
}
