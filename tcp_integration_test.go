package tell_test

// End-to-end integration over real TCP sockets: storage nodes, a
// management node, a commit manager and a processing node all listen on
// 127.0.0.1 ports and speak the binary wire protocol — the deployment shape
// of cmd/telld, exercised in-process.

import (
	"fmt"
	"net"
	"testing"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/obs"
	"tell/internal/relational"
	"tell/internal/store"
	"tell/internal/transport"
	"tell/internal/wire"
)

// freeAddrs reserves n distinct loopback addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

func TestFullStackOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	envr := env.NewReal(1)
	tr := transport.NewTCPNet()
	defer tr.Close()
	addrs := freeAddrs(t, 4) // 2 SNs, 1 manager, 1 CM
	snAddrs := addrs[:2]
	mgrAddr, cmAddr := addrs[2], addrs[3]

	// Management node with a static partition map.
	mgrNode := envr.NewNode("mgr", 2)
	mgr := store.NewManager(mgrAddr, envr, mgrNode, tr)
	mgr.ReplicationFactor = 2
	mgr.PingInterval = 50 * time.Millisecond
	parts := store.EvenPartitions(2)
	for i := range parts {
		parts[i].Master = snAddrs[i%2]
		parts[i].Replicas = []string{snAddrs[(i+1)%2]}
	}
	mgr.SetMap(&store.PartitionMap{Epoch: 1, Partitions: parts})
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	// Storage nodes, configured from the lookup service like telld does —
	// each with its own telemetry pipeline, as in cmd/telld.
	for i, addr := range snAddrs {
		node := envr.NewNode(fmt.Sprintf("sn%d", i), 2)
		sn := store.NewNode(addr, envr, node, tr, store.DefaultCosts())
		sn.SetObs(obs.New(obs.Config{Window: time.Second}, envr.Now))
		if err := sn.Start(); err != nil {
			t.Fatal(err)
		}
		bootClient := store.NewClient(envr, node, tr, mgrAddr)
		ctx, _ := env.DetachedCtx(node)
		m, err := bootClient.FetchMap(ctx)
		if err != nil {
			t.Fatalf("bootstrap: %v", err)
		}
		sn.Configure(m)
	}

	// Commit manager.
	cmNode := envr.NewNode("cm", 2)
	cm := commitmgr.New("cm0", cmAddr, envr, cmNode, tr, store.NewClient(envr, cmNode, tr, mgrAddr))
	if err := cm.Start(); err != nil {
		t.Fatal(err)
	}
	defer cm.Stop()

	// Processing node.
	pnNode := envr.NewNode("pn", 4)
	pn := core.New(core.Config{ID: "pn"}, envr, pnNode, tr,
		store.NewClient(envr, pnNode, tr, mgrAddr),
		commitmgr.NewClient(envr, pnNode, tr, []string{cmAddr}))
	ctx, _ := env.DetachedCtx(pnNode)

	table, err := pn.Catalog().CreateTable(ctx, &relational.TableSchema{
		Name: "kv",
		Cols: []relational.Column{
			{Name: "k", Type: relational.TInt64},
			{Name: "v", Type: relational.TString},
		},
		PKCols: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Write and read back through real sockets.
	txn, err := pn.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 25; i++ {
		if _, err := txn.Insert(ctx, table, relational.Row{
			relational.I64(i), relational.Str(fmt.Sprintf("val-%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := txn.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	check, _ := pn.Begin(ctx)
	_, row, found, err := check.LookupPK(ctx, table, relational.I64(13))
	if err != nil || !found || row[1].S != "val-13" {
		t.Fatalf("lookup over TCP: %v %v %v", row, found, err)
	}
	n := 0
	if err := check.ScanPK(ctx, table,
		[]relational.Value{relational.I64(0)},
		[]relational.Value{relational.I64(100)},
		func(e core.IndexEntry) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("scan over TCP returned %d rows", n)
	}
	if err := check.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// Conflict detection works across the wire too.
	a, _ := pn.Begin(ctx)
	b, _ := pn.Begin(ctx)
	rid, _, _, _ := func() (uint64, relational.Row, bool, error) { return a.LookupPK(ctx, table, relational.I64(1)) }()
	a.Update(ctx, table, rid, relational.Row{relational.I64(1), relational.Str("A")})
	b.Update(ctx, table, rid, relational.Row{relational.I64(1), relational.Str("B")})
	if err := a.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(ctx); err != core.ErrConflict {
		t.Fatalf("want conflict over TCP, got %v", err)
	}

	// Extended stats over the wire: the manager fans the request out to the
	// live storage nodes and returns the merged cluster snapshot, so one
	// round trip paints the whole heatmap (what `tellcli top` renders).
	statsConn, err := tr.Dial(pnNode, mgrAddr)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := statsConn.RoundTrip(ctx, wire.EncodeStatsExtReq())
	if err != nil {
		t.Fatal(err)
	}
	ext, err := wire.DecodeStatsExt(raw)
	if err != nil {
		t.Fatal(err)
	}
	heatNodes := map[string]bool{}
	var heatOps int64
	for _, h := range ext.Heat {
		heatNodes[h.Node] = true
		heatOps += h.Reads + h.Writes
	}
	for _, addr := range snAddrs {
		if !heatNodes[addr] {
			t.Errorf("merged snapshot missing heat from storage node %s (have %v)", addr, heatNodes)
		}
	}
	if heatOps == 0 {
		t.Error("merged heat rows carry zero operations after the workload")
	}
	foundStore := false
	for _, s := range ext.Series {
		if s.Metric == "lat/store" && s.Count > 0 {
			foundStore = true
		}
	}
	if !foundStore {
		t.Error("merged snapshot has no store handler-latency series")
	}
}
