package tell_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"tell"
)

func usersSchema() *tell.Schema {
	return &tell.Schema{
		Name: "users",
		Cols: []tell.Column{
			{Name: "id", Type: tell.TInt64},
			{Name: "name", Type: tell.TString},
			{Name: "score", Type: tell.TInt64},
		},
		PKCols:  []int{0},
		Indexes: []tell.Index{{Name: "byname", Cols: []int{1}}},
	}
}

func startCluster(t *testing.T, opts tell.Options) *tell.Cluster {
	t.Helper()
	c, err := tell.Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPublicAPIRoundTrip(t *testing.T) {
	c := startCluster(t, tell.Options{StorageNodes: 2})
	db, err := c.NewProcessingNode("pn1")
	if err != nil {
		t.Fatal(err)
	}
	table, err := db.CreateTable(usersSchema())
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tx.Insert(table, tell.Row{tell.I64(1), tell.Str("ada"), tell.I64(10)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, _ := db.Begin()
	gotRid, row, found, err := tx2.Get(table, tell.I64(1))
	if err != nil || !found || gotRid != rid || row[1].S != "ada" {
		t.Fatalf("get: rid=%d row=%v found=%v err=%v", gotRid, row, found, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPISharedDataAcrossPNs(t *testing.T) {
	c := startCluster(t, tell.Options{StorageNodes: 2, ReplicationFactor: 2})
	db1, _ := c.NewProcessingNode("pn1")
	table1, err := db1.CreateTable(usersSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := db1.Transact(func(tx *tell.Tx) error {
		_, err := tx.Insert(table1, tell.Row{tell.I64(7), tell.Str("bob"), tell.I64(1)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A PN added later sees everything: elasticity without repartitioning.
	db2, err := c.NewProcessingNode("pn2")
	if err != nil {
		t.Fatal(err)
	}
	table2, err := db2.OpenTable("users")
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db2.Begin()
	_, row, found, err := tx.Get(table2, tell.I64(7))
	if err != nil || !found || row[1].S != "bob" {
		t.Fatalf("cross-PN read: %v %v %v", row, found, err)
	}
	tx.Commit()
}

func TestPublicAPITransactRetriesConflicts(t *testing.T) {
	c := startCluster(t, tell.Options{StorageNodes: 2})
	db1, _ := c.NewProcessingNode("pn1")
	db2, _ := c.NewProcessingNode("pn2")
	table, err := db1.CreateTable(usersSchema())
	if err != nil {
		t.Fatal(err)
	}
	var rid uint64
	if err := db1.Transact(func(tx *tell.Tx) error {
		var err error
		rid, err = tx.Insert(table, tell.Row{tell.I64(1), tell.Str("x"), tell.I64(0)})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	t2, _ := db2.OpenTable("users")
	// Concurrent increments from two PNs; Transact absorbs conflicts.
	var wg sync.WaitGroup
	for _, pair := range []struct {
		db  *tell.DB
		tbl *tell.Table
	}{{db1, table}, {db2, t2}} {
		pair := pair
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				err := pair.db.Transact(func(tx *tell.Tx) error {
					row, found, err := tx.Read(pair.tbl, rid)
					if err != nil || !found {
						t.Errorf("read: %v %v", found, err)
						return err
					}
					row[2] = tell.I64(row[2].I + 1)
					_, err = tx.Update(pair.tbl, rid, row)
					return err
				})
				if err != nil {
					t.Errorf("transact: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	tx, _ := db1.Begin()
	row, _, _ := tx.Read(table, rid)
	tx.Commit()
	if row[2].I != 20 {
		t.Fatalf("score = %d, want 20 (lost updates)", row[2].I)
	}
}

func TestPublicAPIScans(t *testing.T) {
	c := startCluster(t, tell.Options{})
	db, _ := c.NewProcessingNode("pn1")
	table, _ := db.CreateTable(usersSchema())
	if err := db.Transact(func(tx *tell.Tx) error {
		for i := int64(0); i < 20; i++ {
			name := "even"
			if i%2 == 1 {
				name = "odd"
			}
			if _, err := tx.Insert(table, tell.Row{tell.I64(i), tell.Str(name), tell.I64(i)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	defer tx.Commit()
	// PK range scan.
	var got []int64
	tx.ScanPK(table, []tell.Value{tell.I64(5)}, []tell.Value{tell.I64(10)}, func(e tell.Entry) bool {
		got = append(got, e.Row[0].I)
		return true
	})
	if len(got) != 5 || got[0] != 5 || got[4] != 9 {
		t.Fatalf("pk scan: %v", got)
	}
	// Secondary index prefix scan.
	n := 0
	tx.ScanIndexPrefix(table, "byname", []tell.Value{tell.Str("odd")}, func(e tell.Entry) bool {
		n++
		return true
	})
	if n != 10 {
		t.Fatalf("odd rows = %d", n)
	}
	// Full analytical scan with aggregation.
	sum := int64(0)
	tx.ScanTable(table, func(rid uint64, row tell.Row) bool {
		sum += row[2].I
		return true
	})
	if sum != 190 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestPublicAPIDeleteAndErrors(t *testing.T) {
	c := startCluster(t, tell.Options{})
	db, _ := c.NewProcessingNode("pn1")
	table, _ := db.CreateTable(usersSchema())
	var rid uint64
	db.Transact(func(tx *tell.Tx) error {
		var err error
		rid, err = tx.Insert(table, tell.Row{tell.I64(1), tell.Str("gone"), tell.I64(0)})
		return err
	})
	db.Transact(func(tx *tell.Tx) error {
		found, err := tx.Delete(table, rid)
		if !found {
			t.Error("delete found nothing")
		}
		return err
	})
	tx, _ := db.Begin()
	if _, _, found, _ := tx.Get(table, tell.I64(1)); found {
		t.Fatal("deleted row visible")
	}
	tx.Commit()
	if err := tx.Commit(); err != tell.ErrTxnDone {
		t.Fatalf("double commit: %v", err)
	}
	// Duplicate PK from another transaction.
	err := db.Transact(func(tx *tell.Tx) error {
		_, err := tx.Insert(table, tell.Row{tell.I64(2), tell.Str("a"), tell.I64(0)})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Transact(func(tx *tell.Tx) error {
		_, err := tx.Insert(table, tell.Row{tell.I64(2), tell.Str("b"), tell.I64(0)})
		return err
	})
	if err != tell.ErrDuplicateKey {
		t.Fatalf("duplicate insert: %v", err)
	}
}

func TestPublicAPIPushdownScan(t *testing.T) {
	c := startCluster(t, tell.Options{})
	db, _ := c.NewProcessingNode("pn1")
	table, _ := db.CreateTable(usersSchema())
	db.Transact(func(tx *tell.Tx) error {
		for i := int64(0); i < 25; i++ {
			if _, err := tx.Insert(table, tell.Row{tell.I64(i), tell.Str("u"), tell.I64(i * 2)}); err != nil {
				return err
			}
		}
		return nil
	})
	tx, _ := db.Begin()
	defer tx.Commit()
	// score >= 30, project (id).
	var ids []int64
	err := tx.ScanTableWhere(table, 2, tell.GE, tell.I64(30), []int{0},
		func(rid uint64, row tell.Row) bool {
			ids = append(ids, row[0].I)
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("matched %d rows, want 10", len(ids))
	}
	for _, id := range ids {
		if id < 15 {
			t.Fatalf("id %d should not match", id)
		}
	}
}

func TestPublicAPITelemetry(t *testing.T) {
	c := startCluster(t, tell.Options{StorageNodes: 2, Telemetry: true})
	db, _ := c.NewProcessingNode("pn1")
	table, _ := db.CreateTable(usersSchema())
	err := db.Transact(func(tx *tell.Tx) error {
		for i := int64(0); i < 50; i++ {
			if _, err := tx.Insert(table, tell.Row{tell.I64(i), tell.Str("u"), tell.I64(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	rows := c.HeatRows()
	if len(rows) == 0 {
		t.Fatal("Telemetry cluster returned no heat rows after 50 inserts")
	}
	var writes int64
	for _, r := range rows {
		writes += r.Writes
	}
	if writes == 0 {
		t.Error("heat rows carry zero writes")
	}
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tell_range_ops_total") {
		t.Errorf("metrics exposition missing heat gauges:\n%.400s", buf.String())
	}
}

func TestPublicAPITelemetryDisabled(t *testing.T) {
	c := startCluster(t, tell.Options{StorageNodes: 2})
	if rows := c.HeatRows(); rows != nil {
		t.Fatalf("telemetry-off cluster returned heat rows: %v", rows)
	}
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("telemetry-off cluster wrote metrics: %q", buf.String())
	}
}
