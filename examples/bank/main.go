// Bank: concurrent money transfers from multiple processing nodes against
// shared data. Snapshot isolation plus LL/SC conflict detection guarantee
// that no update is ever lost — the total balance is invariant — without a
// single lock being taken.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"tell"
)

const (
	accounts  = 50
	initial   = 1000
	workers   = 8
	transfers = 100 // per worker
)

func main() {
	cluster, err := tell.Start(tell.Options{StorageNodes: 3, ReplicationFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Two processing nodes share all data: transfers run on both, against
	// the same accounts, with no partitioning.
	db1, _ := cluster.NewProcessingNode("pn1")
	db2, _ := cluster.NewProcessingNode("pn2")

	schema := &tell.Schema{
		Name: "accounts",
		Cols: []tell.Column{
			{Name: "id", Type: tell.TInt64},
			{Name: "balance", Type: tell.TInt64},
		},
		PKCols: []int{0},
	}
	table1, err := db1.CreateTable(schema)
	if err != nil {
		log.Fatal(err)
	}
	table2, _ := db2.OpenTable("accounts")

	rids := make([]uint64, accounts)
	err = db1.Transact(func(tx *tell.Tx) error {
		for i := 0; i < accounts; i++ {
			rid, err := tx.Insert(table1, tell.Row{tell.I64(int64(i)), tell.I64(initial)})
			if err != nil {
				return err
			}
			rids[i] = rid
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	transfer := func(db *tell.DB, table *tell.Table, from, to uint64, amount int64) error {
		return db.Transact(func(tx *tell.Tx) error {
			fr, ok, err := tx.Read(table, from)
			if err != nil || !ok {
				return fmt.Errorf("read from: %v %v", ok, err)
			}
			tr, ok, err := tx.Read(table, to)
			if err != nil || !ok {
				return fmt.Errorf("read to: %v %v", ok, err)
			}
			fr[1] = tell.I64(fr[1].I - amount)
			tr[1] = tell.I64(tr[1].I + amount)
			if _, err := tx.Update(table, from, fr); err != nil {
				return err
			}
			_, err = tx.Update(table, to, tr)
			return err
		})
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		db, table := db1, table1
		if w%2 == 1 {
			db, table = db2, table2
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := int64(1 + rng.Intn(50))
				if err := transfer(db, table, rids[from], rids[to], amount); err != nil {
					log.Printf("worker %d: transfer failed: %v", w, err)
				}
			}
		}()
	}
	wg.Wait()

	// Verify the invariant with a consistent snapshot scan.
	tx, _ := db1.Begin()
	total := int64(0)
	count := 0
	tx.ScanTable(table1, func(rid uint64, row tell.Row) bool {
		total += row[1].I
		count++
		return true
	})
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	c1, a1 := db1.Stats()
	c2, a2 := db2.Stats()
	fmt.Printf("%d accounts, total balance %d (expected %d)\n", count, total, accounts*initial)
	fmt.Printf("pn1: %d commits / %d conflicts retried; pn2: %d / %d\n", c1, a1, c2, a2)
	if total != accounts*initial {
		log.Fatal("INVARIANT VIOLATED: money was created or destroyed")
	}
	fmt.Println("invariant holds: no lost updates under concurrent shared-data transactions")
}
