// Elastic: the shared-data architecture's headline operational property
// (§2.1) — processing nodes can be added on demand "without any cost": no
// repartitioning, no data movement. A new PN sees all data instantly and
// adds processing capacity to the same workload.
//
// The storage tier scales too, just not for free: a new SN joins empty and
// the placement controller live-migrates ranges onto it while transactions
// keep running. Clients caught mid-cutover see a stale-map status, refresh,
// and retry; the final conservation check proves no increment was lost or
// duplicated across the moves.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"tell"
)

const items = 200

func main() {
	// Telemetry feeds per-range heat to the placement controller; without it
	// Rebalance would fall back to balancing range counts instead of load.
	cluster, err := tell.Start(tell.Options{StorageNodes: 3, Telemetry: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	first, _ := cluster.NewProcessingNode("pn1")
	counters, err := first.CreateTable(&tell.Schema{
		Name: "counters",
		Cols: []tell.Column{
			{Name: "id", Type: tell.TInt64},
			{Name: "hits", Type: tell.TInt64},
		},
		PKCols: []int{0},
	})
	if err != nil {
		log.Fatal(err)
	}
	rids := make([]uint64, items)
	first.Transact(func(tx *tell.Tx) error {
		for i := 0; i < items; i++ {
			rid, err := tx.Insert(counters, tell.Row{tell.I64(int64(i)), tell.I64(0)})
			if err != nil {
				return err
			}
			rids[i] = rid
		}
		return nil
	})

	var total atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// spawnWorkers attaches a load generator to one PN.
	spawnWorkers := func(db *tell.DB, name string, n int) {
		table, err := db.OpenTable("counters")
		if err != nil {
			log.Fatal(err)
		}
		for w := 0; w < n; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					rid := rids[rng.Intn(items)]
					err := db.Transact(func(tx *tell.Tx) error {
						row, ok, err := tx.Read(table, rid)
						if err != nil || !ok {
							return err
						}
						row[1] = tell.I64(row[1].I + 1)
						_, err = tx.Update(table, rid, row)
						return err
					})
					if err == nil {
						total.Add(1)
					}
				}
			}()
		}
		fmt.Printf("%s online with %d workers\n", name, n)
	}

	measure := func(label string) {
		before := total.Load()
		time.Sleep(300 * time.Millisecond)
		rate := float64(total.Load()-before) / 0.3
		fmt.Printf("  %-22s %8.0f tx/s\n", label, rate)
	}

	fmt.Println("note: all PNs share this host's CPU, so local rates do not add up;")
	fmt.Println("on separate machines each PN contributes its own capacity (see Figure 5")
	fmt.Println("reproduced by cmd/tellbench, where nodes have simulated dedicated cores).")
	spawnWorkers(first, "pn1", 4)
	measure("1 processing node:")

	// Scale out LIVE: each new PN joins with zero data movement.
	second, _ := cluster.NewProcessingNode("pn2")
	spawnWorkers(second, "pn2", 4)
	measure("2 processing nodes:")

	third, _ := cluster.NewProcessingNode("pn3")
	spawnWorkers(third, "pn3", 4)
	measure("3 processing nodes:")

	// Scale out the STORAGE tier with the workload still running: a fresh,
	// empty SN joins, then the heat-driven rebalancer migrates ranges onto it
	// live — chunked copy, delta catch-up, fenced cutover.
	if err := cluster.AddStorageNode("sn3"); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // let the heat windows see current traffic
	moves, err := cluster.Rebalance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sn3 online; rebalancer ran %d placement actions under load\n", moves)
	time.Sleep(300 * time.Millisecond) // let retried transactions drain
	measure("4 storage nodes:")

	close(stop)
	wg.Wait()

	// All increments from every PN landed exactly once.
	tx, _ := first.Begin()
	sum := int64(0)
	tx.ScanTable(counters, func(rid uint64, row tell.Row) bool {
		sum += row[1].I
		return true
	})
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d increments; counter sum %d (must match)\n", total.Load(), sum)
	if sum != total.Load() {
		log.Fatal("MISMATCH: increments lost or duplicated")
	}
}
