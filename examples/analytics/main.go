// Analytics: the mixed-workload scenario of the shared-data architecture
// (§2.1/§5.2) — one processing node runs an OLTP order stream while a
// second, independent processing node executes analytical full-table scans
// over the very same live data. No ETL, no replica lag: the analytics node
// simply reads a consistent snapshot of the shared store.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"tell"
)

func main() {
	cluster, err := tell.Start(tell.Options{StorageNodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	oltp, _ := cluster.NewProcessingNode("oltp")
	olap, _ := cluster.NewProcessingNode("olap")

	orders, err := oltp.CreateTable(&tell.Schema{
		Name: "orders",
		Cols: []tell.Column{
			{Name: "id", Type: tell.TInt64},
			{Name: "region", Type: tell.TString},
			{Name: "amount", Type: tell.TFloat64},
		},
		PKCols:  []int{0},
		Indexes: []tell.Index{{Name: "byregion", Cols: []int{1}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	ordersOLAP, _ := olap.OpenTable("orders")

	regions := []string{"emea", "amer", "apac"}

	// OLTP stream: keep inserting orders.
	var inserted atomic.Int64
	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(1))
		id := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			err := oltp.Transact(func(tx *tell.Tx) error {
				id++
				_, err := tx.Insert(orders, tell.Row{
					tell.I64(id),
					tell.Str(regions[rng.Intn(len(regions))]),
					tell.F64(float64(rng.Intn(100000)) / 100),
				})
				return err
			})
			if err != nil {
				log.Printf("oltp: %v", err)
				return
			}
			inserted.Add(1)
		}
	}()

	// Analytics: periodic revenue-by-region aggregation over live data.
	for round := 1; round <= 4; round++ {
		//lint:allow retrysleep fixed-cadence snapshot window between analytics rounds, not a retry
		time.Sleep(50 * time.Millisecond)
		tx, err := olap.Begin()
		if err != nil {
			log.Fatal(err)
		}
		revenue := map[string]float64{}
		count := 0
		if err := tx.ScanTable(ordersOLAP, func(rid uint64, row tell.Row) bool {
			revenue[row[1].S] += row[2].F
			count++
			return true
		}); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: snapshot of %d orders (stream has inserted %d so far)\n",
			round, count, inserted.Load())
		for _, r := range regions {
			fmt.Printf("  %-5s %10.2f\n", r, revenue[r])
		}
	}
	// The §5.2 push-down variant: the storage nodes filter (region=emea)
	// and project (amount) server-side, so only the relevant column of
	// matching rows crosses the network.
	tx, _ := olap.Begin()
	emea := 0.0
	n := 0
	if err := tx.ScanTableWhere(ordersOLAP, 1, tell.EQ, tell.Str("emea"), []int{2},
		func(rid uint64, row tell.Row) bool {
			emea += row[0].F
			n++
			return true
		}); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("push-down query: emea revenue %.2f over %d orders (filter+projection ran in the storage nodes)\n", emea, n)

	close(stop)
	time.Sleep(20 * time.Millisecond)
	fmt.Printf("OLTP inserted %d orders while analytics scanned live data on a separate PN\n", inserted.Load())
}
