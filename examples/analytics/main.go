// Analytics: the mixed-workload scenario of the shared-data architecture
// (§2.1/§5.2) — one processing node runs an OLTP order stream while a
// second, independent processing node executes analytical full-table scans
// over the very same live data. No ETL, no replica lag: the analytics node
// simply reads a consistent snapshot of the shared store.
//
// The demo ends with a skewed access phase: a zipfian (θ=0.99) read/update
// stream concentrates on a few popular orders, and the cluster's telemetry
// heatmap identifies the storage range where they live — the signal a
// placement controller would act on.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"tell"
)

func main() {
	cluster, err := tell.Start(tell.Options{StorageNodes: 3, Telemetry: true})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	oltp, _ := cluster.NewProcessingNode("oltp")
	olap, _ := cluster.NewProcessingNode("olap")

	orders, err := oltp.CreateTable(&tell.Schema{
		Name: "orders",
		Cols: []tell.Column{
			{Name: "id", Type: tell.TInt64},
			{Name: "region", Type: tell.TString},
			{Name: "amount", Type: tell.TFloat64},
		},
		PKCols:  []int{0},
		Indexes: []tell.Index{{Name: "byregion", Cols: []int{1}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	ordersOLAP, _ := olap.OpenTable("orders")

	regions := []string{"emea", "amer", "apac"}

	// OLTP stream: keep inserting orders.
	var inserted atomic.Int64
	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(1))
		id := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			err := oltp.Transact(func(tx *tell.Tx) error {
				id++
				_, err := tx.Insert(orders, tell.Row{
					tell.I64(id),
					tell.Str(regions[rng.Intn(len(regions))]),
					tell.F64(float64(rng.Intn(100000)) / 100),
				})
				return err
			})
			if err != nil {
				log.Printf("oltp: %v", err)
				return
			}
			inserted.Add(1)
		}
	}()

	// Analytics: periodic revenue-by-region aggregation over live data.
	for round := 1; round <= 4; round++ {
		//lint:allow retrysleep fixed-cadence snapshot window between analytics rounds, not a retry
		time.Sleep(50 * time.Millisecond)
		tx, err := olap.Begin()
		if err != nil {
			log.Fatal(err)
		}
		revenue := map[string]float64{}
		count := 0
		if err := tx.ScanTable(ordersOLAP, func(rid uint64, row tell.Row) bool {
			revenue[row[1].S] += row[2].F
			count++
			return true
		}); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: snapshot of %d orders (stream has inserted %d so far)\n",
			round, count, inserted.Load())
		for _, r := range regions {
			fmt.Printf("  %-5s %10.2f\n", r, revenue[r])
		}
	}
	// The §5.2 push-down variant: the storage nodes filter (region=emea)
	// and project (amount) server-side, so only the relevant column of
	// matching rows crosses the network.
	tx, _ := olap.Begin()
	emea := 0.0
	n := 0
	if err := tx.ScanTableWhere(ordersOLAP, 1, tell.EQ, tell.Str("emea"), []int{2},
		func(rid uint64, row tell.Row) bool {
			emea += row[0].F
			n++
			return true
		}); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("push-down query: emea revenue %.2f over %d orders (filter+projection ran in the storage nodes)\n", emea, n)

	close(stop)
	time.Sleep(20 * time.Millisecond)
	fmt.Printf("OLTP inserted %d orders while analytics scanned live data on a separate PN\n", inserted.Load())

	// Skewed access phase: zipfian θ=0.99 over the inserted order ids, so a
	// handful of popular orders absorb most of the traffic.
	total := int(inserted.Load())
	if total == 0 {
		return
	}
	zr := rand.New(rand.NewSource(7))
	sample := newZipf(zr, 0.99, total)
	for i := 0; i < 3000; i++ {
		id := int64(sample()) + 1
		err := oltp.Transact(func(tx *tell.Tx) error {
			rid, row, found, err := tx.Get(orders, tell.I64(id))
			if err != nil || !found {
				return err
			}
			row[2] = tell.F64(row[2].F + 0.01)
			_, err = tx.Update(orders, rid, row)
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	rows := cluster.HeatRows()
	fmt.Println("\nper-range heat after the zipfian stream (hottest first):")
	fmt.Printf("%-6s %-6s %12s %10s %10s %10s\n", "node", "range", "recent_ops", "reads", "writes", "conflicts")
	for i, r := range rows {
		if i >= 6 {
			break
		}
		fmt.Printf("%-6s %-6d %12d %10d %10d %10d\n",
			r.Node, r.Range, r.RecentOps, r.Reads, r.Writes, r.Conflicts)
	}
	if len(rows) > 1 {
		// Coldest range that saw any traffic at all (idle replica ranges
		// would make the ratio meaningless).
		cold := rows[0].RecentOps
		for _, r := range rows[1:] {
			if r.RecentOps > 0 {
				cold = r.RecentOps
			}
		}
		fmt.Printf("hot range %s/%d saw %.1f× the traffic of the coldest active range — the heat feed a placement controller would rebalance on\n",
			rows[0].Node, rows[0].Range, float64(rows[0].RecentOps)/float64(cold))
	}
}

// newZipf returns a sampler over [0,n) with the YCSB zipfian exponent theta.
// math/rand's Zipf needs s > 1, so the classic θ<1 hot-spot skew is done
// here with an inverted CDF table: P(i) ∝ 1/(i+1)^θ.
func newZipf(rng *rand.Rand, theta float64, n int) func() int {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	return func() int {
		u := rng.Float64() * sum
		return sort.SearchFloat64s(cdf, u)
	}
}
