// Quickstart: start an embedded shared-data cluster, create a table, and
// run ACID transactions against it from a processing node.
package main

import (
	"fmt"
	"log"

	"tell"
)

func main() {
	// A cluster with 3 storage nodes and 2-way replication: every record
	// survives one storage-node failure.
	cluster, err := tell.Start(tell.Options{StorageNodes: 3, ReplicationFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Processing nodes execute transactions; any PN can access all data.
	db, err := cluster.NewProcessingNode("pn1")
	if err != nil {
		log.Fatal(err)
	}

	books, err := db.CreateTable(&tell.Schema{
		Name: "books",
		Cols: []tell.Column{
			{Name: "id", Type: tell.TInt64},
			{Name: "title", Type: tell.TString},
			{Name: "author", Type: tell.TString},
			{Name: "year", Type: tell.TInt64},
		},
		PKCols:  []int{0},
		Indexes: []tell.Index{{Name: "byauthor", Cols: []int{2}}},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Insert a few rows in one transaction.
	err = db.Transact(func(tx *tell.Tx) error {
		rows := []tell.Row{
			{tell.I64(1), tell.Str("The Art of Computer Programming"), tell.Str("Knuth"), tell.I64(1968)},
			{tell.I64(2), tell.Str("Transaction Processing"), tell.Str("Gray"), tell.I64(1992)},
			{tell.I64(3), tell.Str("Concrete Mathematics"), tell.Str("Knuth"), tell.I64(1989)},
		}
		for _, r := range rows {
			if _, err := tx.Insert(books, r); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Point lookup by primary key.
	tx, _ := db.Begin()
	_, row, found, err := tx.Get(books, tell.I64(2))
	if err != nil || !found {
		log.Fatalf("lookup: %v %v", found, err)
	}
	fmt.Printf("book 2: %s (%s, %d)\n", row[1].S, row[2].S, row[3].I)

	// Secondary-index scan: all books by Knuth.
	fmt.Println("by Knuth:")
	tx.ScanIndexPrefix(books, "byauthor", []tell.Value{tell.Str("Knuth")},
		func(e tell.Entry) bool {
			fmt.Printf("  %s (%d)\n", e.Row[1].S, e.Row[3].I)
			return true
		})
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Update under snapshot isolation with automatic conflict retry.
	err = db.Transact(func(tx *tell.Tx) error {
		rid, row, found, err := tx.Get(books, tell.I64(1))
		if err != nil || !found {
			return err
		}
		row[3] = tell.I64(1973) // 3rd edition
		_, err = tx.Update(books, rid, row)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("updated book 1")

	commits, aborts := db.Stats()
	fmt.Printf("done: %d commits, %d aborts\n", commits, aborts)
}
