// Command tellcli is an interactive client for a TCP Tell cluster
// (cmd/telld): it embeds a processing node locally and speaks to the
// storage nodes and commit managers over the network.
//
//	tellcli -manager host0:7000 -cms host0:7002
//
// Commands:
//
//	create <table> <col:type,...> pk=<col,...> [index=<name>:<col,...>]
//	insert <table> <v1> <v2> ...
//	get <table> <pk values...>
//	scan <table>
//	stats [-watch] <addr>
//	top [-watch] [addr]
//	tables
//	help | quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/core"
	"tell/internal/env"
	"tell/internal/relational"
	"tell/internal/store"
	"tell/internal/transport"
	"tell/internal/wire"
)

func main() {
	var (
		manager = flag.String("manager", "", "management node address")
		cms     = flag.String("cms", "", "comma-separated commit-manager addresses")
	)
	flag.Parse()
	if *manager == "" || *cms == "" {
		fmt.Fprintln(os.Stderr, "tellcli: -manager and -cms are required")
		os.Exit(2)
	}
	// TELL_SEED pins the shell's RNG for reproducible sessions.
	envr := env.NewReal(env.SeedFromEnv(time.Now().UnixNano()))
	tr := transport.NewTCPNet()
	node := envr.NewNode("tellcli", 4)
	sc := store.NewClient(envr, node, tr, *manager)
	cmAddrs := strings.Split(*cms, ",")
	pn := core.New(core.Config{ID: "tellcli"}, envr, node, tr, sc,
		commitmgr.NewClient(envr, node, tr, cmAddrs))
	ctx, _ := env.DetachedCtx(node)

	cli := &cli{pn: pn, ctx: ctx, tr: tr, node: node, manager: *manager,
		tables: make(map[string]*core.TableInfo)}
	fmt.Println("tell shell — 'help' for commands")
	sc_ := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("tell> ")
		if !sc_.Scan() {
			return
		}
		line := strings.TrimSpace(sc_.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := cli.run(line); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
}

type cli struct {
	pn      *core.PN
	ctx     env.Ctx
	tr      transport.Transport
	node    env.Node
	manager string
	tables  map[string]*core.TableInfo
}

func (c *cli) table(name string) (*core.TableInfo, error) {
	if t, ok := c.tables[name]; ok {
		return t, nil
	}
	t, err := c.pn.Catalog().OpenTable(c.ctx, name)
	if err != nil {
		return nil, err
	}
	c.tables[name] = t
	return t, nil
}

func (c *cli) run(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		fmt.Println("create <table> <col:type,...> pk=<col,...> [index=<name>:<col,...>]")
		fmt.Println("insert <table> <v1> <v2> ...")
		fmt.Println("get <table> <pk values...>")
		fmt.Println("scan <table>")
		fmt.Println("stats [-watch] <addr>   # telemetry snapshot from one daemon")
		fmt.Println("top [-watch] [addr]     # cluster-wide series/heat/migration/SLO view via the manager")
		fmt.Println("quit")
		return nil
	case "create":
		return c.create(fields[1:])
	case "insert":
		return c.insert(fields[1:])
	case "get":
		return c.get(fields[1:])
	case "scan":
		return c.scan(fields[1:])
	case "stats":
		return c.stats(fields[1:])
	case "top":
		return c.top(fields[1:])
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}

func (c *cli) create(args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("usage: create <table> <col:type,...> pk=<col,...>")
	}
	s := &relational.TableSchema{Name: args[0]}
	for _, spec := range strings.Split(args[1], ",") {
		parts := strings.SplitN(spec, ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad column %q", spec)
		}
		var t relational.ColType
		switch parts[1] {
		case "int":
			t = relational.TInt64
		case "float":
			t = relational.TFloat64
		case "string":
			t = relational.TString
		case "bool":
			t = relational.TBool
		default:
			return fmt.Errorf("unknown type %q", parts[1])
		}
		s.Cols = append(s.Cols, relational.Column{Name: parts[0], Type: t})
	}
	for _, arg := range args[2:] {
		switch {
		case strings.HasPrefix(arg, "pk="):
			for _, col := range strings.Split(arg[3:], ",") {
				i, ok := s.ColIndex(col)
				if !ok {
					return fmt.Errorf("unknown pk column %q", col)
				}
				s.PKCols = append(s.PKCols, i)
			}
		case strings.HasPrefix(arg, "index="):
			parts := strings.SplitN(arg[6:], ":", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad index spec %q", arg)
			}
			ix := relational.IndexSchema{Name: parts[0]}
			for _, col := range strings.Split(parts[1], ",") {
				i, ok := s.ColIndex(col)
				if !ok {
					return fmt.Errorf("unknown index column %q", col)
				}
				ix.Cols = append(ix.Cols, i)
			}
			s.Indexes = append(s.Indexes, ix)
		}
	}
	t, err := c.pn.Catalog().CreateTable(c.ctx, s)
	if err != nil {
		return err
	}
	c.tables[s.Name] = t
	fmt.Printf("table %s created (id %d)\n", s.Name, t.Schema.ID)
	return nil
}

func (c *cli) parseRow(t *core.TableInfo, vals []string) (relational.Row, error) {
	if len(vals) != len(t.Schema.Cols) {
		return nil, fmt.Errorf("want %d values", len(t.Schema.Cols))
	}
	row := make(relational.Row, len(vals))
	for i, v := range vals {
		switch t.Schema.Cols[i].Type {
		case relational.TInt64:
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, err
			}
			row[i] = relational.I64(n)
		case relational.TFloat64:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, err
			}
			row[i] = relational.F64(f)
		case relational.TBool:
			row[i] = relational.BoolV(v == "true")
		default:
			row[i] = relational.Str(v)
		}
	}
	return row, nil
}

func (c *cli) insert(args []string) error {
	t, err := c.table(args[0])
	if err != nil {
		return err
	}
	row, err := c.parseRow(t, args[1:])
	if err != nil {
		return err
	}
	txn, err := c.pn.Begin(c.ctx)
	if err != nil {
		return err
	}
	rid, err := txn.Insert(c.ctx, t, row)
	if err != nil {
		txn.Abort(c.ctx)
		return err
	}
	if err := txn.Commit(c.ctx); err != nil {
		return err
	}
	fmt.Printf("inserted rid %d\n", rid)
	return nil
}

func (c *cli) pkVals(t *core.TableInfo, args []string) ([]relational.Value, error) {
	if len(args) != len(t.Schema.PKCols) {
		return nil, fmt.Errorf("want %d pk values", len(t.Schema.PKCols))
	}
	vals := make([]relational.Value, len(args))
	for i, a := range args {
		col := t.Schema.Cols[t.Schema.PKCols[i]]
		switch col.Type {
		case relational.TInt64:
			n, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				return nil, err
			}
			vals[i] = relational.I64(n)
		default:
			vals[i] = relational.Str(a)
		}
	}
	return vals, nil
}

func (c *cli) get(args []string) error {
	t, err := c.table(args[0])
	if err != nil {
		return err
	}
	vals, err := c.pkVals(t, args[1:])
	if err != nil {
		return err
	}
	txn, err := c.pn.Begin(c.ctx)
	if err != nil {
		return err
	}
	//lint:allow errdiscard read-only transaction: commit only releases the snapshot, the printed rows are already final
	defer txn.Commit(c.ctx)
	rid, row, found, err := txn.LookupPK(c.ctx, t, vals...)
	if err != nil {
		return err
	}
	if !found {
		fmt.Println("(not found)")
		return nil
	}
	fmt.Printf("rid=%d %s\n", rid, formatRow(row))
	return nil
}

func (c *cli) scan(args []string) error {
	t, err := c.table(args[0])
	if err != nil {
		return err
	}
	txn, err := c.pn.Begin(c.ctx)
	if err != nil {
		return err
	}
	//lint:allow errdiscard read-only transaction: commit only releases the snapshot, the printed rows are already final
	defer txn.Commit(c.ctx)
	n := 0
	err = txn.ScanTable(c.ctx, t, func(rid uint64, row relational.Row) bool {
		fmt.Printf("rid=%d %s\n", rid, formatRow(row))
		n++
		return n < 1000
	})
	fmt.Printf("(%d rows)\n", n)
	return err
}

// watchRefresh is the refresh cadence of -watch mode.
const watchRefresh = 2 * time.Second

// watchLoop runs render once, or — in watch mode — repeatedly with a screen
// clear between refreshes until the process is interrupted. A transient
// fetch error in watch mode is shown and retried on the next tick rather
// than ending the loop (the daemon may be restarting).
func (c *cli) watchLoop(watch bool, render func() error) error {
	if !watch {
		return render()
	}
	for {
		fmt.Print("\033[H\033[2J")
		if err := render(); err != nil {
			fmt.Printf("error: %v\n", err)
		}
		fmt.Printf("(refreshing every %v — ctrl-c to quit)\n", watchRefresh)
		c.ctx.Sleep(watchRefresh)
	}
}

// colWidth returns the print width for a name column: at least min, wide
// enough for the longest name so long node/counter names stay aligned.
func colWidth(min int, names ...string) int {
	w := min
	for _, n := range names {
		if len(n) > w {
			w = len(n)
		}
	}
	return w
}

// stats fetches and pretty-prints a live telemetry snapshot from one
// daemon (storage node or commit manager): handler-latency classes from its
// metrics summary plus operation and trace counters. With -watch the view
// refreshes in place.
func (c *cli) stats(args []string) error {
	watch := false
	if len(args) > 0 && args[0] == "-watch" {
		watch, args = true, args[1:]
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: stats [-watch] <addr>")
	}
	addr := args[0]
	return c.watchLoop(watch, func() error { return c.statsOnce(addr) })
}

func (c *cli) statsOnce(addr string) error {
	conn, err := c.tr.Dial(c.node, addr)
	if err != nil {
		return err
	}
	raw, err := conn.RoundTrip(c.ctx, wire.EncodeStatsReq())
	if err != nil {
		return err
	}
	snap, err := wire.DecodeStatsSnapshot(raw)
	if err != nil {
		return err
	}
	fmt.Printf("node %s  uptime %s\n", snap.Node, time.Duration(snap.UptimeNs).Round(time.Millisecond))
	if len(snap.Classes) > 0 {
		names := make([]string, len(snap.Classes))
		for i, cl := range snap.Classes {
			names[i] = cl.Name
		}
		w := colWidth(12, names...)
		fmt.Printf("  %-*s %10s %12s %12s %12s\n", w, "class", "count", "mean", "p99", "max")
		for _, cl := range snap.Classes {
			fmt.Printf("  %-*s %10d %12s %12s %12s\n", w, cl.Name, cl.Count,
				time.Duration(cl.MeanNs).Round(time.Microsecond),
				time.Duration(cl.P99Ns).Round(time.Microsecond),
				time.Duration(cl.MaxNs).Round(time.Microsecond))
		}
	}
	names := make([]string, len(snap.Counters))
	for i, ct := range snap.Counters {
		names[i] = ct.Name
	}
	w := colWidth(28, names...)
	for _, ct := range snap.Counters {
		fmt.Printf("  %-*s %d\n", w, ct.Name, ct.Value)
	}
	// The windowed view over the extended stats protocol: series, heat,
	// breaches and flight state from this one daemon (best-effort — an
	// older daemon without the protocol just shows the base snapshot).
	if raw, err := conn.RoundTrip(c.ctx, wire.EncodeStatsExtReq()); err == nil {
		if ext, err := wire.DecodeStatsExt(raw); err == nil {
			renderExt(ext)
		}
	}
	return nil
}

// top renders the cluster-wide telemetry view: the manager fans the
// extended stats request out to every live storage node and returns the
// merged snapshot — windowed per-class latency series, the per-range
// heatmap ranked by recent activity, SLO breach tallies and flight-recorder
// state. Defaults to the -manager address; pass another daemon's address to
// see just that node.
func (c *cli) top(args []string) error {
	watch := false
	addr := c.manager
	for _, a := range args {
		if a == "-watch" {
			watch = true
			continue
		}
		addr = a
	}
	return c.watchLoop(watch, func() error { return c.topOnce(addr) })
}

func (c *cli) topOnce(addr string) error {
	conn, err := c.tr.Dial(c.node, addr)
	if err != nil {
		return err
	}
	raw, err := conn.RoundTrip(c.ctx, wire.EncodeStatsExtReq())
	if err != nil {
		return err
	}
	ext, err := wire.DecodeStatsExt(raw)
	if err != nil {
		return err
	}
	fmt.Printf("cluster via %s  t=%v  window=%v\n", ext.Node,
		time.Duration(ext.NowNs).Round(time.Millisecond), time.Duration(ext.WindowNs))
	renderExt(ext)
	return nil
}

// renderExt pretty-prints one extended telemetry snapshot — a single
// daemon's own view (`stats`) or the manager's merged cluster view (`top`).
func renderExt(ext *wire.StatsExt) {
	var hists, rates []wire.SeriesStat
	names := []string{}
	for _, s := range ext.Series {
		if s.Hist {
			if s.Count > 0 {
				hists = append(hists, s)
			}
		} else if s.Total != 0 {
			rates = append(rates, s)
		}
		names = append(names, s.Node+" "+s.Metric)
	}
	w := colWidth(20, names...)
	if len(hists) > 0 {
		fmt.Printf("\n%-*s %10s %12s %12s %12s %12s\n", w, "series", "count", "mean", "p50", "p99", "p999")
		for _, s := range hists {
			fmt.Printf("%-*s %10d %12s %12s %12s %12s\n", w, s.Node+" "+s.Metric, s.Count,
				time.Duration(s.MeanNs).Round(time.Microsecond),
				time.Duration(s.P50Ns).Round(time.Microsecond),
				time.Duration(s.P99Ns).Round(time.Microsecond),
				time.Duration(s.P999Ns).Round(time.Microsecond))
		}
	}
	for _, s := range rates {
		fmt.Printf("%-*s total %d\n", w, s.Node+" "+s.Metric, s.Total)
	}

	if len(ext.Heat) > 0 {
		// Rank by recent activity — the "what is hot right now" view. Ties
		// keep the canonical (node, range) order so output is deterministic.
		heat := make([]wire.HeatStat, len(ext.Heat))
		copy(heat, ext.Heat)
		sort.SliceStable(heat, func(i, j int) bool { return heat[i].RecentOps > heat[j].RecentOps })
		hn := make([]string, len(heat))
		for i := range heat {
			hn[i] = heat[i].Node
		}
		hw := colWidth(8, hn...)
		fmt.Printf("\n%-*s %-8s %12s %10s %10s %10s %12s %12s\n", hw,
			"node", "range", "recent_ops", "reads", "writes", "conflicts", "rd_bytes", "mean_lat")
		for i, h := range heat {
			if i >= 12 {
				fmt.Printf("(… %d more ranges)\n", len(heat)-12)
				break
			}
			fmt.Printf("%-*s %-8d %12d %10d %10d %10d %12d %12s\n", hw, h.Node, h.Range,
				h.RecentOps, h.Reads, h.Writes, h.Conflicts, h.ReadBytes,
				time.Duration(h.RecentLatNs).Round(time.Microsecond))
		}
	}

	if len(ext.Migr) > 0 {
		mn := make([]string, len(ext.Migr))
		for i := range ext.Migr {
			mn[i] = ext.Migr[i].Node
		}
		mw := colWidth(8, mn...)
		fmt.Printf("\n%-*s %-8s %-8s %-24s %12s %8s\n", mw,
			"node", "range", "phase", "move", "bytes", "chunks")
		for _, g := range ext.Migr {
			fmt.Printf("%-*s %-8d %-8s %-24s %12d %8d\n", mw, g.Node, g.Range,
				g.Phase, g.Source+" -> "+g.Target, g.BytesMoved, g.Chunks)
		}
	}

	for _, b := range ext.Breaches {
		fmt.Printf("SLO breach %s %s ×%d\n", b.Class, b.Quantile, b.Count)
	}
	fmt.Printf("flight: %d captured, %d evicted, %d events seen\n",
		ext.Flight.Retained, ext.Flight.Evicted, ext.Flight.Seen)
}

func formatRow(row relational.Row) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, " | ")
}
