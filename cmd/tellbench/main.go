// Command tellbench regenerates the paper's evaluation (§6): every table
// and figure has an experiment id; running one prints the corresponding
// rows/series. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
//
// Usage:
//
//	tellbench -list
//	tellbench fig5 fig10
//	tellbench -wh 32 -measure 5000 all
//	tellbench -trace trace.json -breakdown
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"tell/internal/env"
	"tell/internal/exp"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		wh        = flag.Int("wh", 16, "TPC-C warehouses")
		scale     = flag.Float64("scale", 0.05, "per-warehouse row-count scale (1.0 = spec)")
		warmup    = flag.Int("warmup", 200, "warm-up transactions before measurement")
		measure   = flag.Int("measure", 2000, "measured transactions per configuration")
		seed      = flag.Int64("seed", env.SeedFromEnv(42), "random seed (runs are deterministic per seed; $TELL_SEED overrides the default)")
		durable   = flag.String("durable", "", "attach a WAL + fuzzy checkpoints to every storage node: 'mem' (zero-latency blob) or 's3' (S3-profile latency); empty = volatile")
		traceFile = flag.String("trace", "", "run one traced TPC-C deployment and write a Chrome trace_event JSON to FILE (load at ui.perfetto.dev)")
		breakdown = flag.Bool("breakdown", false, "with or without -trace: print the per-transaction-type latency breakdown of a traced run")
	)
	flag.Parse()

	reg := exp.Registry()
	if *list {
		for _, n := range exp.Names() {
			fmt.Println(n)
		}
		return
	}
	opt := exp.Options{
		Warehouses: *wh,
		Scale:      *scale,
		Warmup:     *warmup,
		Measure:    *measure,
		Seed:       *seed,
		Durable:    *durable,
	}
	if *traceFile != "" || *breakdown {
		if err := runTraced(opt, *traceFile, *breakdown); err != nil {
			fmt.Fprintf(os.Stderr, "trace run failed: %v\n", err)
			os.Exit(1)
		}
		if len(flag.Args()) == 0 {
			return
		}
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tellbench [flags] <experiment>... | all  (use -list to enumerate)")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = exp.Names()
	}
	for _, id := range ids {
		fn, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table, err := fn(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table)
		fmt.Printf("(%s completed in %v of real time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runTraced executes one traced Tell deployment run (2 PNs, 3 SNs, 2 CMs —
// enough nodes to exercise cross-node flow stitching) and emits the
// requested artifacts: a Perfetto-loadable trace file, a latency-breakdown
// table, or both.
func runTraced(opt exp.Options, file string, breakdown bool) error {
	opt.Trace = true
	run, err := exp.RunTell(opt, exp.TellParams{PNs: 2, SNs: 3, CMs: 2})
	if err != nil {
		return err
	}
	// Per-transaction message budget of the run (the commit-path coalescing
	// work targets CM msgs/txn < 2; see ablation-coalesce).
	fmt.Printf("network per committed txn: %.2f CM msgs, %.1f msgs, %.1f KB (abort rate %.2f%%)\n",
		run.CMMsgsPerTxn, run.MsgsPerTxn, run.BytesPerTxn/1024, 100*run.AbortRate)
	if file != "" {
		f, err := os.Create(file)
		if err != nil {
			return err
		}
		if err := run.Trace.WriteChromeTrace(f); err != nil {
			return errors.Join(err, f.Close())
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events", file, len(run.Trace.Events()))
		if d := run.Trace.Dropped(); d > 0 {
			fmt.Printf(", %d dropped", d)
		}
		fmt.Println(") — open at ui.perfetto.dev")
	}
	if breakdown {
		fmt.Println(exp.BreakdownTable(run.Trace, "Latency breakdown (traced run)"))
	}
	return nil
}
