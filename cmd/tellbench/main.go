// Command tellbench regenerates the paper's evaluation (§6): every table
// and figure has an experiment id; running one prints the corresponding
// rows/series. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
//
// Usage:
//
//	tellbench -list
//	tellbench fig5 fig10
//	tellbench -wh 32 -measure 5000 all
//	tellbench -trace trace.json -breakdown
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"tell/internal/env"
	"tell/internal/exp"
	"tell/internal/obs"
	"tell/internal/trace"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list experiment ids and exit")
		wh        = flag.Int("wh", 16, "TPC-C warehouses")
		scale     = flag.Float64("scale", 0.05, "per-warehouse row-count scale (1.0 = spec)")
		warmup    = flag.Int("warmup", 200, "warm-up transactions before measurement")
		measure   = flag.Int("measure", 2000, "measured transactions per configuration")
		seed      = flag.Int64("seed", env.SeedFromEnv(42), "random seed (runs are deterministic per seed; $TELL_SEED overrides the default)")
		durable   = flag.String("durable", "", "attach a WAL + fuzzy checkpoints to every storage node: 'mem' (zero-latency blob) or 's3' (S3-profile latency); empty = volatile")
		traceFile = flag.String("trace", "", "run one traced TPC-C deployment and write a Chrome trace_event JSON to FILE (load at ui.perfetto.dev)")
		breakdown = flag.Bool("breakdown", false, "with or without -trace: print the per-transaction-type latency breakdown of a traced run")
		series    = flag.Bool("series", false, "run one telemetry-enabled deployment and print windowed series, per-range heat, SLO breaches and flight-recorder state")
		seriesOut = flag.String("series-dump", "", "with -series: also write the full deterministic telemetry dump to FILE (byte-identical per seed)")
		flightOut = flag.String("flight", "", "with -series: write the flight recorder's captured outlier span trees as Chrome trace_event JSON to FILE")
		benchJSON = flag.String("bench-json", "", "with -series: write a machine-readable benchmark result (throughput, msgs/txn, per-class quantiles) to FILE")
	)
	flag.Parse()

	reg := exp.Registry()
	if *list {
		for _, n := range exp.Names() {
			fmt.Println(n)
		}
		return
	}
	opt := exp.Options{
		Warehouses: *wh,
		Scale:      *scale,
		Warmup:     *warmup,
		Measure:    *measure,
		Seed:       *seed,
		Durable:    *durable,
	}
	if *traceFile != "" || *breakdown {
		if err := runTraced(opt, *traceFile, *breakdown); err != nil {
			fmt.Fprintf(os.Stderr, "trace run failed: %v\n", err)
			os.Exit(1)
		}
		if len(flag.Args()) == 0 && !*series && *benchJSON == "" {
			return
		}
	}
	if *series || *seriesOut != "" || *flightOut != "" || *benchJSON != "" {
		if err := runSeries(opt, *seriesOut, *flightOut, *benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "series run failed: %v\n", err)
			os.Exit(1)
		}
		if len(flag.Args()) == 0 {
			return
		}
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tellbench [flags] <experiment>... | all  (use -list to enumerate)")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = exp.Names()
	}
	for _, id := range ids {
		fn, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table, err := fn(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table)
		fmt.Printf("(%s completed in %v of real time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runTraced executes one traced Tell deployment run (2 PNs, 3 SNs, 2 CMs —
// enough nodes to exercise cross-node flow stitching) and emits the
// requested artifacts: a Perfetto-loadable trace file, a latency-breakdown
// table, or both.
func runTraced(opt exp.Options, file string, breakdown bool) error {
	opt.Trace = true
	run, err := exp.RunTell(opt, exp.TellParams{PNs: 2, SNs: 3, CMs: 2})
	if err != nil {
		return err
	}
	// Per-transaction message budget of the run (the commit-path coalescing
	// work targets CM msgs/txn < 2; see ablation-coalesce).
	fmt.Printf("network per committed txn: %.2f CM msgs, %.1f msgs, %.1f KB (abort rate %.2f%%)\n",
		run.CMMsgsPerTxn, run.MsgsPerTxn, run.BytesPerTxn/1024, 100*run.AbortRate)
	if file != "" {
		f, err := os.Create(file)
		if err != nil {
			return err
		}
		if err := run.Trace.WriteChromeTrace(f); err != nil {
			return errors.Join(err, f.Close())
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events", file, len(run.Trace.Events()))
		if d := run.Trace.Dropped(); d > 0 {
			fmt.Printf(", %d dropped", d)
		}
		fmt.Println(") — open at ui.perfetto.dev")
	}
	if breakdown {
		fmt.Println(exp.BreakdownTable(run.Trace, "Latency breakdown (traced run)"))
	}
	return nil
}

// benchClass is one transaction class's latency digest in -bench-json output.
type benchClass struct {
	Class  string `json:"class"`
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
}

// benchResult is the machine-readable run summary written by -bench-json;
// BENCH_8.json in the repo root records one such run per configuration so
// the performance trajectory is diffable across changes.
type benchResult struct {
	Mix            string       `json:"mix"`
	Warehouses     int          `json:"warehouses"`
	Scale          float64      `json:"scale"`
	Warmup         int          `json:"warmup"`
	Measure        int          `json:"measure"`
	Seed           int64        `json:"seed"`
	PNs            int          `json:"pns"`
	SNs            int          `json:"sns"`
	CMs            int          `json:"cms"`
	TpmC           float64      `json:"tpmc"`
	Tps            float64      `json:"tps"`
	AbortRate      float64      `json:"abort_rate"`
	MsgsPerTxn     float64      `json:"msgs_per_txn"`
	BytesPerTxn    float64      `json:"bytes_per_txn"`
	CMMsgsPerTxn   float64      `json:"cm_msgs_per_txn"`
	Classes        []benchClass `json:"classes"`
	SLOBreaches    int          `json:"slo_breaches"`
	FlightCaptures int          `json:"flight_captures"`
	FlightEvicted  uint64       `json:"flight_evicted"`
}

// runSeries executes one telemetry-enabled deployment (same 2 PN / 3 SN /
// 2 CM shape as the traced run) and emits the requested artifacts: a console
// summary, the deterministic telemetry dump, the flight recorder's outlier
// traces, and the machine-readable benchmark JSON.
func runSeries(opt exp.Options, dumpFile, flightFile, jsonFile string) error {
	opt.Series = true
	const pns, sns, cms = 2, 3, 2
	run, err := exp.RunTell(opt, exp.TellParams{PNs: pns, SNs: sns, CMs: cms})
	if err != nil {
		return err
	}
	p := run.Obs
	at := p.Now()
	res := run.Result

	fmt.Printf("%s: TpmC=%.0f Tps=%.0f aborts=%.2f%%  (%.1f msgs/txn, %.1f KB/txn)\n",
		res.Mix, res.TpmC(), res.Tps(), 100*run.AbortRate, run.MsgsPerTxn, run.BytesPerTxn/1024)

	// Per-class windowed quantiles against their SLO targets.
	slos := make(map[string]obs.SLO)
	for _, s := range exp.DefaultSLOs() {
		slos[s.Class] = s
	}
	var classes []benchClass
	fmt.Printf("\n%-14s %8s %10s %10s %10s   SLO p99\n", "class", "count", "p50", "p99", "p999")
	for _, d := range p.Snapshot() {
		if d.Node != "txn" || !d.Hist || len(d.Metric) < 5 || d.Metric[:4] != "lat/" {
			continue
		}
		class := d.Metric[4:]
		h := p.Class(d.Node, d.Metric)
		if h == nil || h.Count() == 0 {
			continue
		}
		bc := benchClass{
			Class:  class,
			Count:  h.Count(),
			MeanNs: int64(h.Mean()),
			P50Ns:  int64(h.Percentile(50)),
			P99Ns:  int64(h.Percentile(99)),
			P999Ns: int64(h.Percentile(99.9)),
		}
		classes = append(classes, bc)
		target := "-"
		if s, ok := slos[class]; ok {
			target = s.P99.String()
		}
		fmt.Printf("%-14s %8d %10v %10v %10v   %s\n", class, bc.Count,
			time.Duration(bc.P50Ns).Round(time.Microsecond),
			time.Duration(bc.P99Ns).Round(time.Microsecond),
			time.Duration(bc.P999Ns).Round(time.Microsecond), target)
	}

	// Hottest ranges over the retention horizon.
	rows := p.HeatRows()
	obs.SortHeatByRecent(rows)
	fmt.Printf("\n%-6s %-8s %12s %10s %10s %10s %12s\n",
		"node", "range", "recent_ops", "reads", "writes", "conflicts", "mean_lat")
	for i, r := range rows {
		if i >= 10 {
			fmt.Printf("(… %d more rows)\n", len(rows)-10)
			break
		}
		fmt.Printf("%-6s %-8d %12d %10d %10d %10d %12v\n", r.Node, r.Range,
			r.Recent.Ops(), r.Total.Reads, r.Total.Writes, r.Total.Conflicts,
			r.Recent.MeanLat().Round(time.Microsecond))
	}

	breaches, dropped := p.Breaches()
	caps, evicted := p.Flight().Captures()
	fmt.Printf("\nSLO breaches: %d (%d dropped at cap)   flight: %d captured, %d evicted, %d events seen\n",
		len(breaches), dropped, len(caps), evicted, p.Flight().Seen())
	for i, b := range breaches {
		if i >= 5 {
			fmt.Printf("(… %d more breaches)\n", len(breaches)-5)
			break
		}
		fmt.Printf("  t=%v %s %s observed %v > target %v (n=%d)\n",
			b.At.Round(time.Millisecond), b.Class, b.Quantile, b.Observed.Round(time.Microsecond),
			b.Target.Round(time.Microsecond), b.Count)
	}

	if dumpFile != "" {
		f, err := os.Create(dumpFile)
		if err != nil {
			return err
		}
		if err := p.WriteDump(f, at); err != nil {
			return errors.Join(err, f.Close())
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (deterministic telemetry dump)\n", dumpFile)
	}
	if flightFile != "" {
		var events []trace.Event
		for i := range caps {
			events = append(events, caps[i].Events...)
		}
		f, err := os.Create(flightFile)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTraceEvents(f, events); err != nil {
			return errors.Join(err, f.Close())
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d captures, %d events) — open at ui.perfetto.dev\n",
			flightFile, len(caps), len(events))
	}
	if jsonFile != "" {
		br := benchResult{
			Mix:            res.Mix,
			Warehouses:     opt.Warehouses,
			Scale:          opt.Scale,
			Warmup:         opt.Warmup,
			Measure:        opt.Measure,
			Seed:           opt.Seed,
			PNs:            pns,
			SNs:            sns,
			CMs:            cms,
			TpmC:           res.TpmC(),
			Tps:            res.Tps(),
			AbortRate:      run.AbortRate,
			MsgsPerTxn:     run.MsgsPerTxn,
			BytesPerTxn:    run.BytesPerTxn,
			CMMsgsPerTxn:   run.CMMsgsPerTxn,
			Classes:        classes,
			SLOBreaches:    len(breaches),
			FlightCaptures: len(caps),
			FlightEvicted:  evicted,
		}
		raw, err := json.MarshalIndent(&br, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(jsonFile, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (machine-readable benchmark result)\n", jsonFile)
	}
	return nil
}
