// Command tellvet runs the tell determinism-and-invariant analyzer suite
// (internal/lint) over Go packages.
//
// Standalone (the `make lint` path):
//
//	tellvet ./...
//	tellvet -list
//	tellvet -only maporder ./internal/store
//
// It exits 0 when no diagnostics survive suppression, 1 when findings are
// reported, 2 on usage or load errors.
//
// As a go vet tool:
//
//	go vet -vettool=$(go env GOPATH)/bin/tellvet ./...
//
// go vet drives vettools through the unitchecker protocol: the tool is
// invoked once per package with a JSON config file argument (and with
// -V=full to fingerprint the tool). tellvet implements that protocol
// directly — see unitcheckerMain — so it needs no golang.org/x/tools
// dependency there either.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tell/internal/lint"
)

func main() {
	// The unitchecker protocol: `go vet` first probes the tool with
	// -V=full and -flags, then runs it with a single *.cfg argument.
	if len(os.Args) == 2 {
		if os.Args[1] == "-V=full" || os.Args[1] == "-V" {
			// The version fingerprints the tool for go vet's action
			// cache; bump it when analyzer behavior changes.
			fmt.Printf("%s version tellvet-2.0\n", os.Args[0])
			return
		}
		if os.Args[1] == "-flags" {
			// JSON inventory of tool flags settable via `go vet -<flag>`;
			// tellvet exposes none in vettool mode.
			fmt.Println("[]")
			return
		}
	}
	// `go vet -json` forwards -json ahead of the cfg argument.
	jsonOut := false
	var rest []string
	for _, a := range os.Args[1:] {
		if a == "-json" {
			jsonOut = true
			continue
		}
		rest = append(rest, a)
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(unitcheckerMain(rest[0], jsonOut))
	}
	os.Exit(standaloneMain())
}

func standaloneMain() int {
	fs := flag.NewFlagSet("tellvet", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	summary := fs.Bool("summary", false, "print a per-analyzer findings/suppressed summary after the diagnostics")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tellvet [-list] [-only names] [-summary] packages...\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	analyzers := lint.Default()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var chosen []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "tellvet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			chosen = append(chosen, a)
		}
		analyzers = chosen
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tellvet:", err)
		return 2
	}
	pkgs, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tellvet:", err)
		return 2
	}
	diags, stats, err := lint.RunStats(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tellvet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(relativize(wd, d))
	}
	if *summary {
		printSummary(stats)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tellvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// printSummary renders the run's per-analyzer counts in a fixed, fully
// deterministic shape: analyzer names sorted, every analyzer present even
// at zero, no paths or timings. CI runs the suite twice and compares the
// two summaries byte-for-byte — any nondeterminism in package loading,
// analysis order, or suppression accounting shows up as a diff.
func printSummary(stats lint.Stats) {
	names := make([]string, 0, len(stats.Findings))
	for name := range stats.Findings {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("tellvet summary: %d package(s)\n", stats.Packages)
	totalF, totalS := 0, 0
	for _, name := range names {
		f, s := stats.Findings[name], stats.Suppressed[name]
		totalF += f
		totalS += s
		fmt.Printf("%-14s findings=%-3d suppressed=%d\n", name, f, s)
	}
	fmt.Printf("%-14s findings=%-3d suppressed=%d\n", "total", totalF, totalS)
}

func relativize(wd string, d lint.Diagnostic) string {
	s := d.String()
	if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = fmt.Sprintf("%s:%d:%d: %s: %s", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return s
}

// vetConfig mirrors the JSON schema go vet writes for -vettool binaries
// (x/tools' unitchecker.Config).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// unitcheckerMain analyzes one package as directed by a go vet config file.
// Diagnostics go to stderr as file:line:col: text (exit 2 on findings), or
// — under `go vet -json` — to stdout as the JSON object go vet expects
// (exit 0, matching x/tools' unitchecker). Test files are skipped for
// parity with standalone mode: _test.go code may use real time and
// goroutines freely.
func unitcheckerMain(cfgPath string, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tellvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tellvet: parsing vet config:", err)
		return 1
	}
	// tellvet keeps no cross-package facts, but go vet requires the vetx
	// output file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0666); err != nil {
			fmt.Fprintln(os.Stderr, "tellvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tellvet:", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// A pure test package (external _test variant): nothing to check.
		if jsonOut {
			fmt.Printf("{%q: {}}\n", cfg.ImportPath)
		}
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, lookup)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: imp}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "tellvet:", err)
		return 1
	}

	pkg := &lint.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := lint.Run([]*lint.Package{pkg}, lint.Default())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tellvet:", err)
		return 1
	}

	if jsonOut {
		// go vet -json output: {"pkg": {"analyzer": [{posn, message}]}}.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := map[string][]jsonDiag{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
				Posn:    fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				Message: d.Message,
			})
		}
		out, err := json.MarshalIndent(map[string]map[string][]jsonDiag{cfg.ImportPath: byAnalyzer}, "", "\t")
		if err != nil {
			fmt.Fprintln(os.Stderr, "tellvet:", err)
			return 1
		}
		fmt.Printf("%s\n", out)
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
