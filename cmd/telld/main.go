// Command telld runs one Tell cluster role as a real network daemon over
// TCP: a storage node, a commit manager, or the storage management node
// (the lookup service). A minimal three-machine cluster:
//
//	host0$ telld -role manager -listen host0:7000 -storage host1:7001,host2:7001 -rf 2
//	host1$ telld -role storage -listen host1:7001 -manager host0:7000
//	host2$ telld -role storage -listen host2:7001 -manager host0:7000
//	host0$ telld -role cm -listen host0:7002 -manager host0:7000 -id cm0
//
// Clients (cmd/tellcli, or an embedded processing node built on the
// internal packages) connect through the manager's lookup service.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"tell/internal/commitmgr"
	"tell/internal/durable"
	"tell/internal/env"
	"tell/internal/obs"
	"tell/internal/store"
	"tell/internal/trace"
	"tell/internal/transport"
)

func main() {
	var (
		role        = flag.String("role", "", "manager | storage | cm")
		listen      = flag.String("listen", "", "host:port to serve on")
		manager     = flag.String("manager", "", "management node address (storage, cm)")
		storageList = flag.String("storage", "", "comma-separated storage addresses (manager)")
		rf          = flag.Int("rf", 1, "replication factor (manager)")
		parts       = flag.Int("partitions-per-node", 1, "partitions per storage node (manager)")
		id          = flag.String("id", "", "unique id (cm role)")
		peers       = flag.String("peers", "", "comma-separated commit-manager ids (cm role)")
		walDir      = flag.String("wal-dir", "", "directory for the WAL and checkpoints (storage role); empty runs the node volatile")
		ckptBytes   = flag.Int("checkpoint-bytes", 64<<20, "WAL bytes between automatic fuzzy checkpoints (storage role with -wal-dir)")
		metricsAddr = flag.String("metrics", "", "host:port for the HTTP telemetry endpoint (/metrics Prometheus text, /telemetry full dump); empty disables")
	)
	flag.Parse()
	if *listen == "" || *role == "" {
		fmt.Fprintln(os.Stderr, "telld: -role and -listen are required")
		os.Exit(2)
	}

	// TELL_SEED pins the daemon's RNG for reproducible runs; without it
	// the seed is arbitrary (real deployments need no replayability).
	envr := env.NewReal(env.SeedFromEnv(time.Now().UnixNano()))
	// Counters-only telemetry: running totals for `tellcli stats`, no
	// event buffering (full traces come from the simulator).
	rec := trace.NewCounters(envr.Now)
	env.SetTracer(envr, rec)
	// Windowed series + heat + flight recorder: answers the extended stats
	// protocol (`tellcli top`) and, with -metrics, a Prometheus scrape.
	// Daemons use 1s windows; the 100ms default is sized for simulated runs.
	pipe := obs.New(obs.Config{Window: time.Second, AdaptiveOutliers: true}, envr.Now)
	rec.SetTap(pipe.Flight())
	if *metricsAddr != "" {
		serveMetrics(*metricsAddr, pipe)
	}
	tr := transport.NewTCPNet()
	node := envr.NewNode(*listen, 4)

	switch *role {
	case "manager":
		addrs := splitList(*storageList)
		if len(addrs) == 0 {
			log.Fatal("telld: manager needs -storage")
		}
		m := store.NewManager(*listen, envr, node, tr)
		m.ReplicationFactor = *rf
		m.PingInterval = 500 * time.Millisecond
		partsList := store.EvenPartitions(len(addrs) * *parts)
		for i := range partsList {
			owner := i % len(addrs)
			partsList[i].Master = addrs[owner]
			for r := 1; r < *rf; r++ {
				partsList[i].Replicas = append(partsList[i].Replicas, addrs[(owner+r)%len(addrs)])
			}
		}
		m.SetMap(&store.PartitionMap{Epoch: 1, Partitions: partsList})
		if err := m.Start(); err != nil {
			log.Fatalf("telld: %v", err)
		}
		log.Printf("management node serving on %s (%d storage nodes, rf=%d)", *listen, len(addrs), *rf)

	case "storage":
		if *manager == "" {
			log.Fatal("telld: storage needs -manager")
		}
		sn := store.NewNode(*listen, envr, node, tr, store.DefaultCosts())
		sn.SetObs(pipe)
		if *walDir != "" {
			be, err := durable.NewFile(*walDir)
			if err != nil {
				log.Fatalf("telld: wal dir: %v", err)
			}
			sn.AttachDurability(store.DurOptions{Backend: be, CheckpointBytes: *ckptBytes})
			// Replay checkpoint + WAL before serving: a restarted daemon
			// comes back with every acknowledged write it ever logged.
			ctx, _ := env.DetachedCtx(node)
			stats, err := sn.RecoverLocal(ctx)
			if err != nil {
				log.Fatalf("telld: wal replay: %v", err)
			}
			log.Printf("replayed %d records from %d segments (torn tail: %v)",
				stats.Records, stats.Segments, stats.Torn)
		}
		if err := sn.Start(); err != nil {
			log.Fatalf("telld: %v", err)
		}
		// Bootstrap: fetch the partition map from the lookup service.
		go bootstrapStorage(envr, node, tr, sn, *manager)
		log.Printf("storage node serving on %s", *listen)

	case "cm":
		if *manager == "" || *id == "" {
			log.Fatal("telld: cm needs -manager and -id")
		}
		sc := store.NewClient(envr, node, tr, *manager)
		cm := commitmgr.New(*id, *listen, envr, node, tr, sc)
		cm.SetObs(pipe)
		if p := splitList(*peers); len(p) > 0 {
			cm.Peers = p
		}
		// Adopt state a previous incarnation of this id published to the
		// store (no-op on a fresh cluster): with WAL-backed storage nodes
		// the store outlives the commit managers, and a cold start at
		// snapshot base 0 would hide every committed version.
		cmCtx, _ := env.DetachedCtx(node)
		cm.Resume(cmCtx)
		if err := cm.Start(); err != nil {
			log.Fatalf("telld: %v", err)
		}
		log.Printf("commit manager %s serving on %s", *id, *listen)

	default:
		log.Fatalf("telld: unknown role %q", *role)
	}
	select {} // serve forever
}

// serveMetrics starts the HTTP telemetry endpoint: /metrics is the
// Prometheus text exposition of the daemon's windowed series, heat rows and
// flight state; /telemetry is the full human-readable dump.
func serveMetrics(addr string, p *obs.Pipeline) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := p.WritePrometheus(w, p.Now()); err != nil {
			log.Printf("telld: metrics write: %v", err)
		}
	})
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := p.WriteDump(w, p.Now()); err != nil {
			log.Printf("telld: telemetry write: %v", err)
		}
	})
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Fatalf("telld: metrics endpoint: %v", err)
		}
	}()
	log.Printf("telemetry endpoint on http://%s/metrics", addr)
}

// bootstrapStorage pulls the partition map until the manager is reachable.
func bootstrapStorage(envr env.Full, node env.Node, tr transport.Transport, sn *store.Node, manager string) {
	client := store.NewClient(envr, node, tr, manager)
	ctx, _ := env.DetachedCtx(node)
	for {
		if m, err := client.FetchMap(ctx); err == nil {
			sn.Configure(m)
			log.Printf("configured from %s (epoch %d, %d partitions)",
				manager, m.Epoch, len(m.Partitions))
			return
		}
		ctx.Sleep(time.Second)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
