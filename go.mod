module tell

go 1.22
