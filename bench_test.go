package tell_test

// One benchmark per table and figure of the paper's evaluation (§6). Each
// bench runs the corresponding experiment from internal/exp at a reduced
// scale (so `go test -bench=.` finishes on one machine) and logs the
// regenerated rows/series; cmd/tellbench runs the same experiments at full
// scale. Microbenchmarks for the hot data structures follow.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tell/internal/exp"
	"tell/internal/metrics"
	"tell/internal/mvcc"
	"tell/internal/relational"
	"tell/internal/wire"
)

// benchOpt keeps experiment benches tractable; tellbench uses full scale.
func benchOpt() exp.Options {
	return exp.Options{Warehouses: 6, Scale: 0.02, Warmup: 30, Measure: 400, Seed: 42}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	fn := exp.Registry()[id]
	if fn == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		start := time.Now()
		tbl, err := fn(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s(regenerated in %v; run `go run ./cmd/tellbench %s` for full scale)",
				tbl, time.Since(start).Round(time.Millisecond), id)
		}
	}
}

// BenchmarkFig5ScaleOutWrite regenerates Figure 5 (PN scale-out,
// write-intensive, RF1/2/3).
func BenchmarkFig5ScaleOutWrite(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6ScaleOutRead regenerates Figure 6 (PN scale-out,
// read-intensive).
func BenchmarkFig6ScaleOutRead(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7ScaleOutStorage regenerates Figure 7 (storage scale-out).
func BenchmarkFig7ScaleOutStorage(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable3CommitManagers regenerates Table 3 (commit-manager count).
func BenchmarkTable3CommitManagers(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig8EngineComparison regenerates Figure 8 (Tell vs VoltDB-style
// vs MySQL-Cluster-style vs FoundationDB-style, standard mix, RF3).
func BenchmarkFig8EngineComparison(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9Shardable regenerates Figure 9 (shardable TPC-C).
func BenchmarkFig9Shardable(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkTable4ResponseTimes regenerates Table 4 (response times).
func BenchmarkTable4ResponseTimes(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5NetworkLatency regenerates Table 5 (InfiniBand vs 10GbE
// latency percentiles).
func BenchmarkTable5NetworkLatency(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkFig10Network regenerates Figure 10 (network scale-out).
func BenchmarkFig10Network(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11Buffering regenerates Figure 11 (buffering strategies).
func BenchmarkFig11Buffering(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkSec631Contention regenerates the §6.3.1 contention observation.
func BenchmarkSec631Contention(b *testing.B) { benchExperiment(b, "sec631") }

// BenchmarkSec633SyncInterval regenerates the §6.3.3 sync-interval
// observation.
func BenchmarkSec633SyncInterval(b *testing.B) { benchExperiment(b, "sec633") }

// BenchmarkAblationBatching measures request batching on/off (§5.1).
func BenchmarkAblationBatching(b *testing.B) { benchExperiment(b, "ablation-batching") }

// BenchmarkAblationIndexCache measures B+tree inner-node caching (§5.3.1).
func BenchmarkAblationIndexCache(b *testing.B) { benchExperiment(b, "ablation-indexcache") }

// BenchmarkAblationTidRange measures tid-range sizes (§4.2).
func BenchmarkAblationTidRange(b *testing.B) { benchExperiment(b, "ablation-tidrange") }

// BenchmarkAblationGranularity measures record- vs page-granularity storage
// (§2.2/§5.1).
func BenchmarkAblationGranularity(b *testing.B) { benchExperiment(b, "ablation-granularity") }

// --- microbenchmarks for the hot data structures ---

// BenchmarkWireStoreRequestEncode measures request serialization.
func BenchmarkWireStoreRequestEncode(b *testing.B) {
	req := &wire.StoreRequest{Epoch: 3}
	for i := 0; i < 16; i++ {
		req.Ops = append(req.Ops, wire.Op{
			Code: wire.OpCondPut,
			Key:  []byte(fmt.Sprintf("d/%08d", i)),
			Val:  make([]byte, 128),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = req.Encode()
	}
}

// BenchmarkWireStoreRequestDecode measures request parsing.
func BenchmarkWireStoreRequestDecode(b *testing.B) {
	req := &wire.StoreRequest{Epoch: 3}
	for i := 0; i < 16; i++ {
		req.Ops = append(req.Ops, wire.Op{Code: wire.OpGet, Key: []byte(fmt.Sprintf("k%08d", i))})
	}
	raw := req.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeStoreRequest(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecordVisible measures MVCC visibility resolution on a 4-version
// record.
func BenchmarkRecordVisible(b *testing.B) {
	rec := mvcc.NewRecord(10, make([]byte, 128))
	for _, tid := range []uint64{20, 30, 40} {
		rec = rec.WithVersion(tid, false, make([]byte, 128))
	}
	snap := mvcc.NewSnapshot(25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rec.Visible(snap); !ok {
			b.Fatal("not visible")
		}
	}
}

// BenchmarkRecordEncodeDecode measures the multi-version record codec.
func BenchmarkRecordEncodeDecode(b *testing.B) {
	rec := mvcc.NewRecord(10, make([]byte, 128))
	rec = rec.WithVersion(20, false, make([]byte, 128))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := rec.Encode()
		if _, err := mvcc.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotContains measures the visibility test on a descriptor
// with scattered committed bits.
func BenchmarkSnapshotContains(b *testing.B) {
	s := mvcc.NewSnapshot(1000)
	for t := uint64(1001); t < 1512; t += 3 {
		s.Add(t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Contains(1000 + uint64(i%600))
	}
}

// BenchmarkIndexKeyEncode measures the order-preserving composite key
// encoder (one TPC-C customer PK per op).
func BenchmarkIndexKeyEncode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = relational.EncodeKey(
			relational.I64(int64(i%100)),
			relational.I64(int64(i%10)),
			relational.I64(int64(i%3000)),
		)
	}
}

// BenchmarkRowCodec measures row encode+decode for a TPC-C-like schema.
func BenchmarkRowCodec(b *testing.B) {
	schema := &relational.TableSchema{
		Name: "t",
		Cols: []relational.Column{
			{Name: "a", Type: relational.TInt64},
			{Name: "b", Type: relational.TString},
			{Name: "c", Type: relational.TFloat64},
			{Name: "d", Type: relational.TInt64},
		},
		PKCols: []int{0},
	}
	row := relational.Row{
		relational.I64(42), relational.Str("customer name here"),
		relational.F64(3.14), relational.I64(7),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := relational.EncodeRow(schema, row)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := relational.DecodeRow(schema, raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramRecord measures latency recording.
func BenchmarkHistogramRecord(b *testing.B) {
	h := &metrics.Histogram{}
	rng := rand.New(rand.NewSource(1))
	durations := make([]time.Duration, 1024)
	for i := range durations {
		durations[i] = time.Duration(rng.Intn(1e8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(durations[i%len(durations)])
	}
}

// BenchmarkExtPushdown measures the §5.2 push-down extension: analytics
// with server-side selection/projection vs ship-to-query.
func BenchmarkExtPushdown(b *testing.B) { benchExperiment(b, "ext-pushdown") }
